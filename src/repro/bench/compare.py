"""Cross-run comparison and trend rendering for bench trajectories.

``compare`` puts two trajectory entries side by side (the latest entry
of each file) and checks every shared benchmark's **median** for
relative drift.  Wall clocks are noisy where simulated cycles are not,
so the gate is a band, not an equality: a benchmark fails only when its
regression exceeds ``tolerance + noise_floor``, where the per-benchmark
noise floor is the worse of the two entries' own repetition spreads
(``(max - min) / median``).  A benchmark whose runs wobble 30% cannot
fail a 25% gate on a 28% drift — but a seeded 2× slowdown sails past
any sane band, which is what the CI gate asserts.

``trend`` renders a whole trajectory file: one line per benchmark with
its median over every recorded entry, so the perf history of the repo
reads at a glance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro._util import env_float
from repro.bench.suite import load_trajectory
from repro.bench.timer import Sample

__all__ = ["BenchRow", "BenchDiffReport", "compare_entries", "compare_files",
           "format_trend", "bench_tolerance", "DEFAULT_TOLERANCE"]

#: Default relative-regression tolerance (before the noise floor).
DEFAULT_TOLERANCE = 0.25


def bench_tolerance() -> float:
    """Regression tolerance from ``REPRO_BENCH_TOLERANCE``."""
    return float(env_float("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE,
                           lo=0.0))


@dataclass(frozen=True)
class BenchRow:
    """One benchmark's median drift between two entries."""

    benchmark: str
    baseline: float              # baseline median seconds
    current: float               # current median seconds
    drift: float                 # (current - baseline) / baseline
    floor: float                 # per-benchmark noise floor (spread)
    allowed: float               # tolerance + floor

    @property
    def regressed(self) -> bool:
        """True when the drift is a regression past the allowed band."""
        return self.drift > self.allowed

    @property
    def improved(self) -> bool:
        """True when the benchmark got faster past the allowed band."""
        return self.drift < -self.allowed


@dataclass
class BenchDiffReport:
    """Outcome of one entry-vs-entry comparison."""

    tolerance: float
    rows: list = field(default_factory=list)
    missing: list = field(default_factory=list)   # only in baseline
    added: list = field(default_factory=list)     # only in current
    warnings: list = field(default_factory=list)  # env fingerprint drift

    @property
    def regressions(self) -> list:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        """No regression past its band and no benchmark vanished."""
        return not self.regressions and not self.missing

    def format(self) -> str:
        from repro.experiments.report import format_rows
        lines = []
        if self.rows:
            ordered = sorted(self.rows, key=lambda r: (-r.drift, r.benchmark))
            lines.append(format_rows(
                ["benchmark", "baseline_s", "current_s", "drift", "band",
                 "verdict"],
                [(r.benchmark, f"{r.baseline:.4f}", f"{r.current:.4f}",
                  f"{r.drift:+.1%}", f"±{r.allowed:.0%}",
                  "REGRESSED" if r.regressed
                  else ("improved" if r.improved else "ok"))
                 for r in ordered]))
        for name in self.missing:
            lines.append(f"missing from current run: {name}")
        for name in self.added:
            lines.append(f"new in current run: {name}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        verdict = "OK" if self.ok else "REGRESSION"
        lines.append(f"{verdict}: {len(self.regressions)} benchmark(s) past "
                     f"tolerance {self.tolerance:.0%} + noise floor over "
                     f"{len(self.rows)} compared")
        return "\n".join(lines)


def _env_warnings(base_env: dict, cur_env: dict) -> list[str]:
    """Fingerprint fields whose drift makes medians incomparable."""
    out = []
    for key in ("python", "implementation", "platform", "machine", "cpus"):
        if base_env.get(key) != cur_env.get(key):
            out.append(f"env {key} changed: {base_env.get(key)!r} -> "
                       f"{cur_env.get(key)!r} — wall-clock medians are not "
                       f"comparable across machines")
    return out


def compare_entries(baseline: dict, current: dict,
                    tolerance: float | None = None) -> BenchDiffReport:
    """Compare two trajectory entries benchmark by benchmark."""
    tolerance = bench_tolerance() if tolerance is None else tolerance
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base, cur = baseline["results"], current["results"]
    report = BenchDiffReport(tolerance=tolerance)
    report.missing = sorted(set(base) - set(cur))
    report.added = sorted(set(cur) - set(base))
    report.warnings = _env_warnings(baseline.get("env", {}),
                                    current.get("env", {}))
    for name in sorted(set(base) & set(cur)):
        b = Sample.from_dict(base[name])
        c = Sample.from_dict(cur[name])
        if b.median <= 0:
            raise ValueError(f"benchmark {name!r} has a non-positive "
                             f"baseline median ({b.median})")
        floor = max(b.spread, c.spread)
        report.rows.append(BenchRow(
            benchmark=name, baseline=b.median, current=c.median,
            drift=(c.median - b.median) / b.median, floor=floor,
            allowed=tolerance + floor))
    return report


def compare_files(baseline_path: str | os.PathLike,
                  current_path: str | os.PathLike,
                  tolerance: float | None = None) -> BenchDiffReport:
    """Compare the latest entries of two trajectory files.

    Either file may also be a bare entry (``bench run --no-append``
    output); suites must match.
    """
    base = load_trajectory(baseline_path)
    cur = load_trajectory(current_path)
    if base["suite"] != cur["suite"]:
        raise ValueError(f"cannot compare suite {base['suite']!r} "
                         f"({baseline_path}) against {cur['suite']!r} "
                         f"({current_path})")
    return compare_entries(base["entries"][-1], cur["entries"][-1],
                           tolerance=tolerance)


def format_trend(trajectory: dict) -> str:
    """Per-benchmark median history over a trajectory's entries."""
    from repro.experiments.report import format_rows
    entries = trajectory["entries"]
    names = sorted({name for entry in entries for name in entry["results"]})
    rows = []
    for name in names:
        medians = [entry["results"][name]["median_s"]
                   for entry in entries if name in entry["results"]]
        history = " -> ".join(f"{m:.4f}" for m in medians)
        if len(medians) >= 2 and medians[0] > 0:
            overall = (medians[-1] - medians[0]) / medians[0]
            delta = f"{overall:+.1%}"
        else:
            delta = "-"
        rows.append((name, len(medians), history, delta))
    header = (f"suite {trajectory['suite']}: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'}")
    return header + "\n" + format_rows(
        ["benchmark", "entries", "median_s history", "latest vs first"],
        rows)
