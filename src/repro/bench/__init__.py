"""Wall-clock benchmark harness, profiler and perf-trajectory gate.

Simulated cycles answer "is the *model* faster"; this package answers
"is the *repo* faster" — the wall-clock cost of running the simulator,
the figure sweeps and the campaign executor on real hardware.

Layout:

* :mod:`repro.bench.timer` — median-of-K measurement with warmup and an
  injectable clock (``FakeClock`` for byte-stable tests).
* :mod:`repro.bench.suite` — pinned benchmark suites (``figs``,
  ``kernels``, ``campaign``) and the versioned ``BENCH_<suite>.json``
  trajectory files, each entry fingerprinted with python/platform/CPU
  and the code fingerprint.
* :mod:`repro.bench.profiler` — deterministic ``sys.setprofile``
  collector attributing wall time to the same subsystem buckets the
  simulated-cycle tracer uses for spans, plus collapsed-stack
  (flamegraph) export.
* :mod:`repro.bench.compare` — perf gate: median drift vs a
  per-benchmark noise floor, and trajectory trend rendering.
* :mod:`repro.bench.cli` — ``repro bench run|profile|compare|trend``.

Wall-clock reads are deliberate here and legal: ``repro/bench/`` sits
outside the determinism lint scope (``repro.lint`` SIM_SCOPE), unlike
the simulator it measures.
"""

from repro.bench.timer import FakeClock, Sample, measure

__all__ = ["FakeClock", "Sample", "measure"]
