"""Clock seam and repetition protocol for wall-clock benchmarks.

Everything in :mod:`repro.bench` measures **wall time** — the one
quantity the simulated-cycle layer (:mod:`repro.obs`) cannot see.  Wall
clocks are nondeterministic by nature, so every consumer takes the clock
as an *injectable seam*: production code passes :data:`WALL` (a
monotonic ``perf_counter``), tests pass a :class:`FakeClock` and get
byte-stable artifacts.  The determinism lint allows this module because
``repro/bench/`` is outside the simulated core's scope — simulated
results never depend on anything measured here.

The repetition protocol is median-of-K with warmup: *warmup* untimed
runs first (imports, allocator pools, suite-graph memoisation), then
*repeat* timed runs, reported as the median plus the spread statistics
the compare layer uses as a per-benchmark noise floor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro._util import check_nonnegative, env_int

__all__ = ["Clock", "WALL", "FakeClock", "Sample", "measure",
           "bench_repeat", "bench_warmup", "DEFAULT_REPEAT",
           "DEFAULT_WARMUP"]

#: ``Clock`` is any zero-argument callable returning seconds as a float.
Clock = Callable[[], float]

#: The production clock: monotonic, high-resolution, wall seconds.
WALL: Clock = time.perf_counter

#: Default repetitions per benchmark (overridable via REPRO_BENCH_REPEAT).
DEFAULT_REPEAT = 5
#: Default untimed warmup runs (overridable via REPRO_BENCH_WARMUP).
DEFAULT_WARMUP = 1


def bench_repeat() -> int:
    """Timed repetitions per benchmark from ``REPRO_BENCH_REPEAT``."""
    return int(env_int("REPRO_BENCH_REPEAT", DEFAULT_REPEAT, lo=1))


def bench_warmup() -> int:
    """Untimed warmup runs per benchmark from ``REPRO_BENCH_WARMUP``."""
    return int(env_int("REPRO_BENCH_WARMUP", DEFAULT_WARMUP, lo=0))


class FakeClock:
    """Deterministic clock for tests: advances *step* per reading.

    Injecting one makes every timing-derived artifact byte-stable, which
    is how the bench tests assert schemas and trajectory round-trips
    without racing the machine they run on.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0):
        check_nonnegative("step", step)
        self.now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class Sample:
    """Timed repetitions of one benchmark, with derived statistics.

    ``spread`` — ``(max - min) / median`` — is the per-benchmark noise
    floor the compare layer adds to its tolerance band: a benchmark
    whose own repetitions wobble 30% cannot fail a 25% gate on a 28%
    drift.
    """

    seconds: list[float] = field(default_factory=list)
    warmup: int = 0

    @property
    def repeat(self) -> int:
        return len(self.seconds)

    @property
    def median(self) -> float:
        if not self.seconds:
            raise ValueError("empty sample has no median")
        return _median(self.seconds)

    @property
    def mean(self) -> float:
        if not self.seconds:
            raise ValueError("empty sample has no mean")
        return sum(self.seconds) / len(self.seconds)

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def worst(self) -> float:
        return max(self.seconds)

    @property
    def spread(self) -> float:
        """Relative spread of the repetitions (0.0 for a single run)."""
        med = self.median
        if med <= 0:
            return 0.0
        return (self.worst - self.best) / med

    def to_dict(self) -> dict:
        """JSON-serialisable stats block (stable key set)."""
        return {
            "median_s": self.median,
            "mean_s": self.mean,
            "min_s": self.best,
            "max_s": self.worst,
            "spread": self.spread,
            "repeat": self.repeat,
            "warmup": self.warmup,
            "samples_s": list(self.seconds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Sample":
        """Rebuild a sample from its :meth:`to_dict` stats block."""
        if "samples_s" not in data:
            raise ValueError("stats block has no samples_s")
        return cls(seconds=[float(s) for s in data["samples_s"]],
                   warmup=int(data.get("warmup", 0)))


def measure(fn: Callable[[], object], *, repeat: int | None = None,
            warmup: int | None = None, clock: Clock = WALL) -> Sample:
    """Time ``fn()`` *repeat* times after *warmup* untimed runs."""
    repeat = bench_repeat() if repeat is None else repeat
    warmup = bench_warmup() if warmup is None else warmup
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    check_nonnegative("warmup", warmup)
    for _ in range(warmup):
        fn()
    seconds = []
    for _ in range(repeat):
        t0 = clock()
        fn()
        seconds.append(max(0.0, clock() - t0))
    return Sample(seconds=seconds, warmup=warmup)
