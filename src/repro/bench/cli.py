"""Command line for the benchmark harness (``repro bench ...``).

Subcommands::

    repro bench run --suite figs        # measure, append to BENCH_figs.json
    repro bench profile --top 10        # wall-clock hot spots by subsystem
    repro bench compare A.json B.json   # perf gate: drift vs noise band
    repro bench trend BENCH_figs.json   # median history per benchmark

``run`` appends one entry to the suite's trajectory file (repo root by
default) unless ``--no-append``; ``--output`` additionally writes the
bare entry to a separate file for CI artifact upload.  ``compare``
exits non-zero on regression past ``tolerance + noise floor`` — that
exit code *is* the CI perf gate.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
from contextlib import redirect_stdout

from repro._util import atomic_write_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro.bench.compare import DEFAULT_TOLERANCE
    from repro.bench.suite import suite_names

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="wall-clock benchmark harness and perf-trajectory gate")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a benchmark suite and record it")
    run.add_argument("--suite", choices=suite_names(), default="kernels",
                     help="benchmark suite to run (default: kernels)")
    run.add_argument("--repeat", type=int, default=None,
                     help="timed repetitions per benchmark "
                          "(default: REPRO_BENCH_REPEAT or 5)")
    run.add_argument("--warmup", type=int, default=None,
                     help="untimed warmup runs per benchmark "
                          "(default: REPRO_BENCH_WARMUP or 1)")
    run.add_argument("--filter", default=None, metavar="SUBSTR",
                     help="only run benchmarks whose name contains SUBSTR")
    run.add_argument("--trajectory", default=None, metavar="PATH",
                     help="trajectory file to append to "
                          "(default: ./BENCH_<suite>.json)")
    run.add_argument("--output", default=None, metavar="PATH",
                     help="also write this run's bare entry to PATH")
    run.add_argument("--no-append", action="store_true",
                     help="do not append to the trajectory file")

    prof = sub.add_parser("profile",
                          help="attribute wall time to subsystem buckets")
    prof.add_argument("--suite", choices=suite_names(), default="kernels",
                      help="suite to profile (default: kernels)")
    prof.add_argument("--filter", default=None, metavar="SUBSTR",
                      help="only profile benchmarks whose name contains "
                           "SUBSTR")
    prof.add_argument("--top", type=int, default=10,
                      help="rows per hot-spot table (default: 10)")
    prof.add_argument("--collapsed", default=None, metavar="PATH",
                      help="write flamegraph collapsed stacks to PATH")
    prof.add_argument("--min-coverage", type=float, default=None,
                      metavar="FRAC",
                      help="fail unless at least FRAC of wall time is "
                           "attributed to named subsystem buckets")

    cmp_ = sub.add_parser("compare",
                          help="gate current results against a baseline")
    cmp_.add_argument("baseline", help="baseline trajectory or entry file")
    cmp_.add_argument("current", help="current trajectory or entry file")
    cmp_.add_argument("--tolerance", type=float, default=None,
                      help="relative regression tolerance before the noise "
                           f"floor (default: REPRO_BENCH_TOLERANCE or "
                           f"{DEFAULT_TOLERANCE})")

    trend = sub.add_parser("trend",
                           help="median history across a trajectory file")
    trend.add_argument("trajectory", nargs="?", default=None,
                       help="trajectory file (default: ./BENCH_<suite>.json)")
    trend.add_argument("--suite", choices=suite_names(), default="kernels",
                       help="suite whose default file to read when no "
                            "path is given")
    return parser


def _cmd_run(args) -> int:
    from repro.bench.suite import (append_entry, print_entry, run_suite,
                                   trajectory_path)
    entry = run_suite(args.suite, repeat=args.repeat, warmup=args.warmup,
                      name_filter=args.filter,
                      progress=lambda line: print(line, file=sys.stderr))
    print_entry(entry)
    if args.output:
        atomic_write_text(args.output,
                          json.dumps(entry, sort_keys=True, indent=1) + "\n")
        print(f"entry written to {args.output}")
    if not args.no_append:
        path = args.trajectory or trajectory_path(args.suite)
        data = append_entry(path, entry)
        print(f"appended entry {len(data['entries'])} to {path}")
    return 0


def _cmd_profile(args) -> int:
    from repro.bench.profiler import WallProfiler
    from repro.bench.suite import suite_benchmarks
    benches = suite_benchmarks(args.suite, args.filter)
    profiler = WallProfiler()
    for bench in benches:
        print(f"profiling {bench.name} ({bench.description}) ...",
              file=sys.stderr)
        sink = io.StringIO()
        with redirect_stdout(sink):
            profiler.profile(bench.fn)
    report = profiler.report
    print(report.format_table(args.top))
    if args.collapsed:
        report.write_collapsed(args.collapsed)
        print(f"collapsed stacks ({len(report.stacks)} unique) written to "
              f"{args.collapsed}")
    if args.min_coverage is not None and report.coverage() < args.min_coverage:
        print(f"FAIL: coverage {report.coverage():.1%} is below the "
              f"required {args.min_coverage:.1%}", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args) -> int:
    from repro.bench.compare import compare_files
    report = compare_files(args.baseline, args.current,
                           tolerance=args.tolerance)
    print(report.format())
    return 0 if report.ok else 1


def _cmd_trend(args) -> int:
    from repro.bench.compare import format_trend
    from repro.bench.suite import load_trajectory, trajectory_path
    path = args.trajectory or trajectory_path(args.suite)
    print(format_trend(load_trajectory(path)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "profile": _cmd_profile,
               "compare": _cmd_compare, "trend": _cmd_trend}[args.command]
    try:
        return handler(args)
    except (ValueError, OSError) as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
