"""PageRank on the CSR substrate.

The paper's §III-B presents the irregular microbenchmark as "a reasonable
abstraction of a single iteration of algorithms such as Page Rank"; this
module is the real thing — damped power iteration over the undirected
CSR graph, fully vectorised — plus a hook that prices its iterations on
the simulated machine through the same cost model as the microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.graph.csr import CSRGraph

__all__ = ["pagerank", "PageRankResult", "simulate_pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    """Converged ranks plus iteration metadata."""

    ranks: np.ndarray
    iterations: int
    converged: bool
    residual: float
    total_cycles: float = 0.0


def pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> PageRankResult:
    """Damped PageRank by power iteration (L1 tolerance *tol*).

    Isolated vertices act as dangling nodes: their rank mass is spread
    uniformly, so the ranks always sum to 1.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    check_positive("max_iterations", max_iterations)
    n = graph.n_vertices
    if n == 0:
        return PageRankResult(np.zeros(0), 0, True, 0.0)
    indptr, indices = graph.indptr, graph.indices
    deg = graph.degrees.astype(np.float64)
    dangling = deg == 0
    out = np.where(dangling, 1.0, deg)

    ranks = np.full(n, 1.0 / n)
    residual = np.inf
    for it in range(1, max_iterations + 1):
        contrib = ranks / out
        # sum of contributions of each vertex's neighbours (segment sum)
        cs = np.concatenate([[0.0], np.cumsum(contrib[indices])])
        incoming = cs[indptr[1:]] - cs[indptr[:-1]]
        dangling_mass = ranks[dangling].sum() / n
        new = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        residual = float(np.abs(new - ranks).sum())
        ranks = new
        if residual < tol:
            return PageRankResult(ranks, it, True, residual)
    return PageRankResult(ranks, max_iterations, False, residual)


def simulate_pagerank(
    graph: CSRGraph,
    n_threads: int,
    iterations: int = 20,
    spec=None,
    config=None,
    cache_scale: float = 1.0,
    seed: int = 0,
) -> PageRankResult:
    """Run PageRank for real and price *iterations* sweeps on the machine.

    One PageRank sweep has exactly the microbenchmark's access pattern
    (gather neighbour state, combine, write own state), so the simulated
    time is the irregular kernel's at the same iteration count.
    """
    from repro.kernels.irregular import simulate_irregular
    from repro.machine.config import KNF

    config = config or KNF
    run = simulate_irregular(graph, n_threads, iterations=iterations,
                             spec=spec, config=config,
                             cache_scale=cache_scale, seed=seed)
    result = pagerank(graph, max_iterations=iterations, tol=0.0)
    return PageRankResult(result.ranks, result.iterations, result.converged,
                          result.residual, total_cycles=run.total_cycles)
