"""Betweenness centrality (Brandes' algorithm) on the BFS substrate.

The paper's §I motivates BFS as "a generic kernel many algorithms are
based on, including computationally expensive centrality measures
[Brandes 2001]".  This module implements Brandes' exact algorithm for
unweighted graphs — a forward level-synchronous BFS accumulating
shortest-path counts, then a backward dependency sweep — vectorised per
level on the CSR arrays, with optional source sampling for approximation.

:func:`simulate_betweenness` prices the forward sweeps on the simulated
machine (each is exactly one layered BFS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import rng_from_seed
from repro.graph.csr import CSRGraph
from repro.kernels.base import gather_neighbors

__all__ = ["betweenness_centrality", "simulate_betweenness",
           "BetweennessResult"]


def _brandes_single_source(graph: CSRGraph, source: int, scores: np.ndarray):
    """Accumulate one source's dependencies into *scores* (in place)."""
    n = graph.n_vertices
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.asarray([source], dtype=np.int64)
    levels = [frontier]
    level = 1
    while frontier.size:
        nbrs, seg = gather_neighbors(indptr, indices, frontier)
        if not len(nbrs):
            break
        fresh = dist[nbrs] == -1
        # claim new vertices
        new = np.unique(nbrs[fresh])
        if len(new):
            dist[new] = level
        # path counts flow along all edges into the next level
        into_next = (dist[nbrs] == level)
        if into_next.any():
            np.add.at(sigma, nbrs[into_next], sigma[frontier[seg[into_next]]])
        frontier = new
        if len(new):
            levels.append(new)
        level += 1

    delta = np.zeros(n)
    for frontier in reversed(levels[1:]):
        nbrs, seg = gather_neighbors(indptr, indices, frontier)
        pred = dist[nbrs] == dist[frontier[0]] - 1
        if pred.any():
            w = frontier[seg[pred]]
            contrib = sigma[nbrs[pred]] / sigma[w] * (1.0 + delta[w])
            np.add.at(delta, nbrs[pred], contrib)
    mask = np.ones(n, dtype=bool)
    mask[source] = False
    scores[mask] += delta[mask]


@dataclass(frozen=True)
class BetweennessResult:
    """Centrality scores plus sampling and simulated-cost metadata."""

    scores: np.ndarray
    n_sources: int
    total_cycles: float = 0.0


def betweenness_centrality(
    graph: CSRGraph,
    sources: int | None = None,
    normalized: bool = True,
    seed=0,
) -> np.ndarray:
    """Exact (all sources) or sampled betweenness centrality.

    With ``sources=k`` only *k* sampled sources are accumulated (Brandes'
    approximation, scaled by ``n/k``).  Undirected convention: pair
    dependencies are halved, and normalisation divides by
    ``(n-1)(n-2)/2``.
    """
    n = graph.n_vertices
    scores = np.zeros(n)
    if n == 0:
        return scores
    if sources is None:
        chosen = np.arange(n)
    else:
        if not 1 <= sources <= n:
            raise ValueError(f"sources must be in [1, {n}], got {sources}")
        rng = rng_from_seed(seed)
        chosen = rng.choice(n, size=sources, replace=False)
    for s in chosen:
        _brandes_single_source(graph, int(s), scores)
    scores *= n / len(chosen)
    scores /= 2.0  # undirected: each pair counted from both endpoints
    if normalized and n > 2:
        scores /= (n - 1) * (n - 2) / 2.0
    return scores


def simulate_betweenness(
    graph: CSRGraph,
    n_threads: int,
    sources: int = 4,
    config=None,
    cache_scale: float = 1.0,
    seed: int = 0,
) -> BetweennessResult:
    """Sampled betweenness with the forward BFS sweeps priced on the
    simulated machine (backward sweeps cost roughly the same: x2)."""
    from repro.kernels.bfs.layered import simulate_bfs
    from repro.machine.config import KNF

    config = config or KNF
    n = graph.n_vertices
    rng = rng_from_seed(seed)
    chosen = rng.choice(n, size=min(sources, n), replace=False)
    cycles = 0.0
    for s in chosen:
        run = simulate_bfs(graph, n_threads, source=int(s), config=config,
                           cache_scale=cache_scale, seed=seed)
        cycles += 2.0 * run.total_cycles
    scores = betweenness_centrality(graph, sources=len(chosen), seed=seed)
    return BetweennessResult(scores, len(chosen), cycles)
