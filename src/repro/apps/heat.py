"""Heat-equation (diffusion) solver on an unstructured mesh.

§III-B's second archetype for the irregular kernel: "a reasonable
abstraction of a single iteration of algorithms such as ... Heat Equation
solvers".  This is the real solver — explicit Jacobi relaxation of the
graph Laplacian with Dirichlet boundary vertices — with the usual
guarantees (maximum principle, convergence to the harmonic solution) that
the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.graph.csr import CSRGraph

__all__ = ["heat_diffusion", "HeatResult"]


@dataclass(frozen=True)
class HeatResult:
    """Temperatures plus iteration metadata."""

    temperature: np.ndarray
    iterations: int
    converged: bool
    residual: float


def heat_diffusion(
    graph: CSRGraph,
    boundary: dict[int, float],
    initial: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> HeatResult:
    """Relax to the steady-state (harmonic) temperature field.

    ``boundary`` maps vertex -> fixed temperature; every other vertex
    iterates to the average of its neighbours (Jacobi).  Vertices not
    connected to any boundary keep their initial value.
    """
    check_positive("max_iterations", max_iterations)
    n = graph.n_vertices
    if n == 0:
        return HeatResult(np.zeros(0), 0, True, 0.0)
    for v, val in boundary.items():
        if not 0 <= v < n:
            raise ValueError(f"boundary vertex {v} out of range")
        if not np.isfinite(val):
            raise ValueError(f"boundary value for {v} is not finite")

    indptr, indices = graph.indptr, graph.indices
    deg = np.maximum(graph.degrees.astype(np.float64), 1.0)
    temp = np.zeros(n) if initial is None else \
        np.asarray(initial, dtype=np.float64).copy()
    if len(temp) != n:
        raise ValueError(f"initial has length {len(temp)}, expected {n}")
    fixed = np.zeros(n, dtype=bool)
    for v, val in boundary.items():
        fixed[v] = True
        temp[v] = val

    residual = np.inf
    for it in range(1, max_iterations + 1):
        cs = np.concatenate([[0.0], np.cumsum(temp[indices])])
        nbr_avg = (cs[indptr[1:]] - cs[indptr[:-1]]) / deg
        new = np.where(fixed | (graph.degrees == 0), temp, nbr_avg)
        residual = float(np.abs(new - temp).max())
        temp = new
        if residual < tol:
            return HeatResult(temp, it, True, residual)
    return HeatResult(temp, max_iterations, False, residual)
