"""Applications built on the kernel substrate — the workloads the paper's
introduction motivates: PageRank and heat diffusion (the irregular
kernel's archetypes, §III-B), betweenness centrality (the BFS-based
"computationally expensive centrality measures", §I), and task-graph
phase scheduling (the colouring application that opens §I)."""

from repro.apps.pagerank import pagerank, simulate_pagerank, PageRankResult
from repro.apps.heat import heat_diffusion, HeatResult
from repro.apps.betweenness import (
    betweenness_centrality,
    simulate_betweenness,
    BetweennessResult,
)
from repro.apps.task_scheduling import (
    phase_schedule,
    schedule_makespan,
    PhaseSchedule,
)

__all__ = [
    "pagerank",
    "simulate_pagerank",
    "PageRankResult",
    "heat_diffusion",
    "HeatResult",
    "betweenness_centrality",
    "simulate_betweenness",
    "BetweennessResult",
    "phase_schedule",
    "schedule_makespan",
    "PhaseSchedule",
]
