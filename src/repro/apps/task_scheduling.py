"""Task-graph phase scheduling via graph colouring.

The paper's §I opens with this application: "represent the tasks of a
computation as the vertices of a graph, and an edge connects two vertices
if these two vertices cannot be computed simultaneously.  Finding a
coloring of this graph allows to partition the tasks into sets that can
be safely computed in parallel.  Minimizing the number of colors
decreases the number of synchronization points."

:func:`phase_schedule` turns a colouring into an executable phase plan;
:func:`schedule_makespan` evaluates it on ``t`` workers (each phase ends
with a barrier, so fewer colours = fewer synchronisation points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.graph.csr import CSRGraph

__all__ = ["phase_schedule", "schedule_makespan", "PhaseSchedule"]


@dataclass(frozen=True)
class PhaseSchedule:
    """Tasks grouped into conflict-free phases (one per colour)."""

    phases: tuple
    n_tasks: int

    @property
    def n_phases(self) -> int:
        """Number of phases (= colours used)."""
        return len(self.phases)

    @property
    def n_synchronizations(self) -> int:
        """Barriers between phases — what minimising colours minimises."""
        return max(0, self.n_phases - 1)


def phase_schedule(conflict_graph: CSRGraph, colors=None) -> PhaseSchedule:
    """Build a phase schedule from a colouring of the conflict graph.

    Without an explicit colouring, the sequential greedy one is used.
    Raises if the supplied colouring is not a proper colouring (a phase
    would contain conflicting tasks).
    """
    from repro.kernels.coloring.sequential import greedy_coloring
    from repro.kernels.coloring.verify import verify_coloring

    n = conflict_graph.n_vertices
    if colors is None:
        _, colors = greedy_coloring(conflict_graph)
    colors = np.asarray(colors)
    if n and not verify_coloring(conflict_graph, colors):
        raise ValueError("colors is not a proper colouring of the conflict graph")
    phases = tuple(np.nonzero(colors == c)[0]
                   for c in range(1, int(colors.max()) + 1 if n else 1))
    return PhaseSchedule(phases=phases, n_tasks=n)


def schedule_makespan(schedule: PhaseSchedule, n_workers: int,
                      task_cost: float = 1.0,
                      barrier_cost: float = 0.0) -> float:
    """Makespan of the phase plan on *n_workers* identical workers.

    Each phase runs its (independent) tasks in ``ceil(len/workers)``
    rounds; a barrier separates consecutive phases.
    """
    check_positive("n_workers", n_workers)
    if task_cost < 0 or barrier_cost < 0:
        raise ValueError("costs must be non-negative")
    rounds = sum(-(-len(p) // n_workers) for p in schedule.phases)
    return rounds * task_cost + schedule.n_synchronizations * barrier_cost
