"""Analytic performance models (the paper's §III-C BFS model and an SMT
roofline companion)."""

from repro.models.bfs_model import (
    bfs_model_level_cost,
    bfs_model_speedup,
    bfs_model_curve,
    bfs_model_speedup_for_graph,
)
from repro.models.smt_model import smt_speedup, smt_speedup_curve, saturation_threads

__all__ = [
    "bfs_model_level_cost",
    "bfs_model_speedup",
    "bfs_model_curve",
    "bfs_model_speedup_for_graph",
    "smt_speedup",
    "smt_speedup_curve",
    "saturation_threads",
]
