"""The paper's analytic layered-BFS speedup model (§III-C).

The computation is decomposed into ``L`` synchronised steps, one per BFS
level, with ``x_l`` vertices at level ``l``, executed by ``t`` threads in
blocks of ``b`` vertices under five idealising assumptions (uniform vertex
cost, no cache effects, independent threads, no scheduling overhead, no
synchronisation overhead).  The modelled cost of level ``l`` is::

    c(l) = x_l                      if x_l < b     (one thread, one block)
    c(l) = ceil(x_l / (t*b)) * b    otherwise      (rounds of full blocks)

and the achievable speedup is ``sum(x_l) / sum(c(l))``.

The model's knee — where the slope changes because some levels stop
having enough blocks to feed every thread — is what Figure 4(a) shows at
13 threads on ``pwtk``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_model_level_cost", "bfs_model_speedup", "bfs_model_curve",
           "bfs_model_speedup_for_graph"]


def bfs_model_level_cost(widths, n_threads: int, block: int) -> np.ndarray:
    """Modelled cost ``c(l)`` of each level (vector over levels)."""
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    x = np.asarray(widths, dtype=np.float64)
    if np.any(x < 0):
        raise ValueError("level widths must be non-negative")
    rounds = np.ceil(x / (n_threads * block))
    return np.where(x < block, x, rounds * block)


def bfs_model_speedup(widths, n_threads: int, block: int) -> float:
    """Achievable speedup ``sum(x_l) / sum(c(l))`` for one configuration."""
    x = np.asarray(widths, dtype=np.float64)
    if x.sum() == 0:
        return 0.0
    return float(x.sum() / bfs_model_level_cost(x, n_threads, block).sum())


def bfs_model_curve(widths, thread_counts, block: int) -> np.ndarray:
    """Model speedup at each thread count (the dashed line of Figure 4)."""
    return np.asarray([bfs_model_speedup(widths, t, block)
                       for t in thread_counts])


def bfs_model_speedup_for_graph(graph: CSRGraph, n_threads: int,
                                block: int = 32,
                                source: int | None = None) -> float:
    """Convenience wrapper: profile the graph's levels, then apply the model."""
    from repro.kernels.bfs.sequential import frontier_profile

    if source is None:
        source = graph.n_vertices // 2
    return bfs_model_speedup(frontier_profile(graph, source), n_threads, block)
