"""Analytic SMT roofline model for the loop kernels.

A companion to the paper's BFS model: for a kernel whose average vertex
costs ``compute`` issue cycles and ``stall`` exposed-latency cycles, a
machine with ``cores`` in-order cores and scatter-placed threads executes
at per-vertex rate ``max(k * compute, compute + stall) / k`` per thread
(``k`` = threads per core), giving the closed-form speedup used by the
ablation benches to sanity-check the event simulation::

    speedup(t) = t * (compute + stall) / max(k * compute, compute + stall)

Memory-bound kernels (``stall >> compute``) scale linearly in *threads*;
compute-bound kernels cap at ``cores * (1 + stall/compute)`` — the two
regimes of the paper's Figures 2 and 3.
"""

from __future__ import annotations

import numpy as np

from repro.machine.config import MachineConfig

__all__ = ["smt_speedup", "smt_speedup_curve", "saturation_threads"]


def smt_speedup(compute: float, stall: float, n_threads: int,
                config: MachineConfig) -> float:
    """Closed-form speedup at *n_threads* (scatter placement)."""
    if compute <= 0:
        raise ValueError(f"compute must be > 0, got {compute}")
    if stall < 0:
        raise ValueError(f"stall must be >= 0, got {stall}")
    if not 1 <= n_threads <= config.max_threads:
        raise ValueError(f"n_threads {n_threads} out of range")
    k = -(-n_threads // config.n_cores)
    single = compute + stall
    per_chunk = max(k * compute, single)
    return n_threads * single / per_chunk


def smt_speedup_curve(compute: float, stall: float, thread_counts,
                      config: MachineConfig) -> np.ndarray:
    """Model speedups over a thread sweep."""
    return np.asarray([smt_speedup(compute, stall, t, config)
                       for t in thread_counts])


def saturation_threads(compute: float, stall: float,
                       config: MachineConfig) -> float:
    """Thread count where the issue pipeline saturates (speedup knee):
    ``k* = 1 + stall / compute`` threads per core."""
    if compute <= 0:
        raise ValueError(f"compute must be > 0, got {compute}")
    return config.n_cores * (1.0 + stall / compute)
