"""Per-item cost arrays for the simulated kernels.

Every kernel iteration (one vertex of one parallel loop) is summarised as
``(compute, stall, volume)`` — issue cycles, expected exposed memory
latency, and DRAM lines.  :class:`WorkCosts` holds the per-item arrays
plus prefix sums so a scheduler chunk's cost is an O(1) lookup, which is
what keeps the discrete-event simulation at chunk granularity.

The per-operation cycle constants below are model parameters for a simple
in-order x86 core (they scale through ``MachineConfig.issue_width`` for
the out-of-order host).  They were calibrated jointly with
:mod:`repro.machine.config` against the paper's reported speedup shapes
(see EXPERIMENTS.md); the *structure* — what is charged per vertex, per
edge, per queue push — follows the algorithms in §III/IV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.cache import AccessProfile

__all__ = [
    "WorkCosts",
    "coloring_tentative_costs",
    "coloring_conflict_costs",
    "irregular_costs",
    "bfs_scan_costs",
    "OP",
]


class OP:
    """Per-operation issue-cycle constants (see module docstring)."""

    # Greedy colouring: loop bookkeeping + first-fit scan + colour write.
    COLOR_VERTEX = 26.0
    # Per neighbour: load colour, update forbidden array.
    COLOR_EDGE = 7.0
    # Conflict detection: per vertex / per neighbour compare.
    CONFLICT_VERTEX = 12.0
    CONFLICT_EDGE = 4.0
    # Irregular microbenchmark: per-iteration loop + division, per-edge FMA.
    IRREG_VERTEX = 20.0
    IRREG_EDGE = 12.0
    # Repeat passes hit L1: the load still occupies issue slots.
    IRREG_EDGE_CACHED = 10.0
    # BFS: dequeue + level write + queue-push bookkeeping.
    BFS_VERTEX = 16.0
    BFS_EDGE = 6.0
    BFS_PUSH = 9.0
    # Scanning a sentinel entry in a block-accessed queue.
    BFS_SENTINEL = 3.0


@dataclass(frozen=True)
class WorkCosts:
    """Per-item cost arrays with O(1) range sums."""

    compute: np.ndarray
    stall: np.ndarray
    volume: np.ndarray
    _pc: np.ndarray = None
    _ps: np.ndarray = None
    _pv: np.ndarray = None

    def __post_init__(self):
        for name, arr in (("compute", self.compute), ("stall", self.stall),
                          ("volume", self.volume)):
            arr = np.ascontiguousarray(arr, dtype=np.float64)
            if arr.ndim != 1 or len(arr) != len(self.compute):
                raise ValueError(f"{name} must be 1-D and consistent in length")
            if len(arr) and (not np.isfinite(arr).all() or arr.min() < 0):
                raise ValueError(f"{name} must be finite and non-negative")
            object.__setattr__(self, name, arr)
        object.__setattr__(self, "_pc", np.concatenate([[0.0], np.cumsum(self.compute)]))
        object.__setattr__(self, "_ps", np.concatenate([[0.0], np.cumsum(self.stall)]))
        object.__setattr__(self, "_pv", np.concatenate([[0.0], np.cumsum(self.volume)]))

    def __len__(self) -> int:
        return len(self.compute)

    def range_cost(self, lo: int, hi: int) -> tuple[float, float, float]:
        """(compute, stall, volume) summed over items ``[lo, hi)``."""
        if not 0 <= lo <= hi <= len(self):
            raise IndexError(f"range [{lo}, {hi}) out of bounds for {len(self)}")
        return (self._pc[hi] - self._pc[lo],
                self._ps[hi] - self._ps[lo],
                self._pv[hi] - self._pv[lo])

    @property
    def total(self) -> tuple[float, float, float]:
        """(compute, stall, volume) over all items."""
        return self._pc[-1], self._ps[-1], self._pv[-1]

    def take(self, idx: np.ndarray) -> "WorkCosts":
        """Cost arrays for a subset/permutation of items (e.g. a Visit set)."""
        return WorkCosts(self.compute[idx], self.stall[idx], self.volume[idx])


def coloring_tentative_costs(graph: CSRGraph, profile: AccessProfile) -> WorkCosts:
    """Costs of one speculative-colouring pass over every vertex (Alg. 3)."""
    deg = graph.degrees.astype(np.float64)
    compute = OP.COLOR_VERTEX + OP.COLOR_EDGE * deg
    return WorkCosts(compute, profile.stall.copy(), profile.volume.copy())


def coloring_conflict_costs(graph: CSRGraph, profile: AccessProfile,
                            stall_factor: float = 0.5) -> WorkCosts:
    """Costs of the conflict-detection pass (Alg. 4).

    The pass re-reads the colours the tentative pass just wrote, so a
    fraction of its random reads are cache-warm (``stall_factor``).
    """
    deg = graph.degrees.astype(np.float64)
    compute = OP.CONFLICT_VERTEX + OP.CONFLICT_EDGE * deg
    return WorkCosts(compute, stall_factor * profile.stall,
                     stall_factor * profile.volume)


def irregular_costs(graph: CSRGraph, profile: AccessProfile,
                    iterations: int, local_hit_cycles: float) -> WorkCosts:
    """Costs of the irregular-computation microbenchmark (Alg. 5).

    The first pass over a vertex's neighbourhood pays the access profile;
    the remaining ``iterations - 1`` passes re-read lines the first pass
    just touched — an issue-slot cost plus a short, SMT-hideable latency.
    This is what moves the kernel from memory-bound (``iter = 1``) to
    compute-bound (``iter = 10``), the axis of the paper's Figure 3.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    deg = graph.degrees.astype(np.float64)
    compute = (OP.IRREG_VERTEX * iterations + OP.IRREG_EDGE * deg * iterations
               + OP.IRREG_EDGE_CACHED * deg * (iterations - 1))
    stall = profile.stall + (iterations - 1) * deg * local_hit_cycles * 0.8
    return WorkCosts(compute, stall, profile.volume.copy())


def bfs_scan_costs(graph: CSRGraph, profile: AccessProfile) -> WorkCosts:
    """Per-vertex costs of scanning one *valid* queue entry during a BFS
    level: visit bookkeeping plus the adjacency sweep.

    Queue-push and sentinel costs are frontier-dependent and added by the
    BFS kernels themselves.
    """
    deg = graph.degrees.astype(np.float64)
    compute = OP.BFS_VERTEX + OP.BFS_EDGE * deg
    return WorkCosts(compute, profile.stall.copy(), profile.volume.copy())
