"""Machine timing model: configurations, SMT cores, cache model, costs."""

from repro.machine.config import MachineConfig, KNF, HOST_XEON
from repro.machine.core import Core, Chip
from repro.machine.cache import AccessProfile, access_profile
from repro.machine.costs import (
    OP,
    WorkCosts,
    coloring_tentative_costs,
    coloring_conflict_costs,
    irregular_costs,
    bfs_scan_costs,
)

__all__ = [
    "MachineConfig",
    "KNF",
    "HOST_XEON",
    "Core",
    "Chip",
    "AccessProfile",
    "access_profile",
    "OP",
    "WorkCosts",
    "coloring_tentative_costs",
    "coloring_conflict_costs",
    "irregular_costs",
    "bfs_scan_costs",
]
