"""SMT core and chip timing model.

A chunk of work is summarised by three numbers (computed vectorised by
:mod:`repro.machine.costs`): ``compute`` cycles to issue, ``stall`` cycles
of expected memory latency, and ``volume`` DRAM lines transferred.

A core with ``k`` busy SMT contexts executes a chunk in::

    max(k * compute / issue_width,        # pipeline shared by residents
        compute / issue_width + stall,    # this thread's critical path
        memory channel finish time)       # chip-wide bandwidth

which is the standard fluid SMT model: when the chunk is memory-bound the
other residents' compute hides its stalls (time ≈ compute + stall
regardless of k, so speedup keeps growing to 4 threads/core — the paper's
coloring result), and when compute-bound the residents serialise on the
issue pipeline (speedup caps at the core count — the paper's irregular
kernel at high ``iter``).  Occupancy is sampled at chunk start; chunks are
small and numerous so mid-chunk occupancy drift averages out (DESIGN.md §3).
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.sim.resources import MemoryChannel

__all__ = ["Core", "Chip"]


class Core:
    """One physical core: tracks how many SMT contexts are busy."""

    __slots__ = ("index", "busy", "issued_cycles")

    def __init__(self, index: int):
        self.index = index
        self.busy = 0
        self.issued_cycles = 0.0

    def begin(self) -> None:
        """Mark one SMT context busy (call before executing a chunk)."""
        self.busy += 1

    def finish(self) -> None:
        """Release one SMT context (call after the chunk completes)."""
        if self.busy <= 0:
            raise RuntimeError(f"core {self.index}: finish() without begin()")
        self.busy -= 1


class Chip:
    """A full machine instance: cores plus the shared memory channel.

    One ``Chip`` is created per simulated parallel region; its state
    (core occupancy, channel bank reservations) is transient.
    """

    def __init__(self, config: MachineConfig, n_threads: int, faults=None):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads > config.max_threads:
            raise ValueError(
                f"{n_threads} threads exceed {config.name}'s "
                f"{config.max_threads} hardware contexts")
        self.config = config
        self.n_threads = n_threads
        self.faults = faults  # optional repro.sim.faults.FaultInjector
        self.cores = [Core(i) for i in range(config.n_cores)]
        self.channel = MemoryChannel(config.mem_banks, config.dram_transfer_cycles)

    def core_of(self, thread: int) -> Core:
        """Scatter placement: thread *i* lives on core ``i % n_cores``.

        This matches the paper's setup — with ≤31 threads each gets its own
        KNF core; SMT co-residency starts past the core count.
        """
        return self.cores[thread % self.config.n_cores]

    def threads_per_core(self) -> int:
        """Maximum SMT residency under scatter placement."""
        return -(-self.n_threads // self.config.n_cores)

    def cores_used(self) -> int:
        """Number of distinct cores hosting at least one thread."""
        return min(self.n_threads, self.config.n_cores)

    def execute(self, now: float, thread: int, compute: float, stall: float,
                volume: float) -> float:
        """Duration of a chunk started at *now* by *thread*.

        The caller must bracket the call between ``core.begin()`` and
        ``core.finish()``; occupancy is read from the core.
        """
        core = self.core_of(thread)
        k = max(1, core.busy)
        iw = self.config.issue_width
        compute_eff = compute
        jitter = 1.0
        if self.faults is not None:
            # Clock throttling stretches every issued cycle; transient
            # stalls add exposed latency; jitter degrades the channel.
            compute_eff = compute * self.faults.compute_factor(core.index, now)
            stall = stall + self.faults.transient_stall(core.index, now)
            jitter = self.faults.channel_factor(now)
        issue_time = k * compute_eff / iw
        critical_path = compute_eff / iw + stall
        channel_done = self.channel.service(now, volume, scale=jitter)
        core.issued_cycles += compute
        return max(issue_time, critical_path, channel_done - now)
