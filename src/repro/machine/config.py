"""Machine configurations.

Two machines from the paper's §V-A:

* :data:`KNF` — the Knights Ferry prototype: 31 usable in-order cores with
  4-way SMT (up to 124 hardware threads; the paper sweeps 1..121), small
  per-core L2, GDDR5 with high latency but ample bandwidth, a bidirectional
  ring for coherence/atomics.
* :data:`HOST_XEON` — the dual Xeon X5680 host: 12 out-of-order cores with
  2-way HyperThreading, large shared L3, low-latency DDR3.

All costs are in core clock cycles.  Absolute cycle counts are *model
parameters*, not silicon measurements (the paper's absolute numbers were
under NDA); they are chosen so the relative behaviours the paper reports
emerge: SMT latency hiding, ring-atomic contention, allocation-hostile
bag traversal, and the host's stronger single-thread baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "KNF", "HOST_XEON"]


@dataclass(frozen=True)
class MachineConfig:
    """Timing/topology parameters of a simulated shared-memory machine."""

    name: str
    n_cores: int
    smt_per_core: int
    #: Instructions issued per cycle per core, shared by resident SMT
    #: threads (1.0 models the in-order KNF pipeline; >1 models OoO hosts).
    issue_width: float

    # --- cache hierarchy -------------------------------------------------
    line_bytes: int
    #: Per-core private cache capacity in lines (KNF: 256 KiB L2).
    cache_lines_per_core: int
    #: Load-to-use cycles for a local cache hit beyond L1.
    local_hit_cycles: float
    #: Ring/snoop latency when the line lives in a peer's cache.
    remote_hit_cycles: float
    #: DRAM access latency.
    dram_cycles: float
    #: Latency discount for streamed (sequential, prefetch-friendly)
    #: accesses such as the CSR adjacency scan: 0 = fully hidden, 1 = full
    #: DRAM latency on every streamed line.
    stream_visibility: float

    # --- memory bandwidth -------------------------------------------------
    mem_banks: int
    dram_transfer_cycles: float  # channel occupancy per line

    # --- synchronisation ---------------------------------------------------
    atomic_cycles: float         # fetch-and-add service time (ring RTT)
    lock_cycles: float           # uncontended lock acquire/release pair
    barrier_hop_cycles: float    # per log2(t) step of the join barrier
    fork_cycles: float           # parallel-region entry (thread wakeup)

    # --- software/runtime costs --------------------------------------------
    alloc_cycles: float          # heap allocation (bag nodes, holders)
    spawn_cycles: float          # task spawn / deque push-pop pair
    steal_cycles: float          # successful steal (ring RTT + deque CAS)
    sched_chunk_cycles: float    # non-atomic per-chunk dispatch bookkeeping
    tls_init_cycles_per_entry: float  # first-touch init of thread-local state

    @property
    def max_threads(self) -> int:
        """Hardware thread count (cores × SMT ways)."""
        return self.n_cores * self.smt_per_core

    @property
    def aggregate_cache_lines(self) -> int:
        """Chip-wide cache capacity in lines."""
        return self.n_cores * self.cache_lines_per_core

    def barrier_cost(self, parties: int) -> float:
        """Release cost of a *parties*-thread barrier (log-tree of ring hops)."""
        if parties <= 1:
            return 0.0
        return self.barrier_hop_cycles * max(1, (parties - 1).bit_length())

    def with_(self, **changes) -> "MachineConfig":
        """A modified copy (used by ablation benches)."""
        return replace(self, **changes)


#: Knights Ferry prototype (§V-A): 32 cores on chip, 31 exposed in offload
#: mode, 4-way SMT, 1 GB GDDR5.
KNF = MachineConfig(
    name="KNF",
    n_cores=31,
    smt_per_core=4,
    issue_width=1.0,
    line_bytes=64,
    cache_lines_per_core=4096,        # 256 KiB private L2
    local_hit_cycles=6.0,      # mostly L1-resident within the banded sweep
    remote_hit_cycles=240.0,   # ring snoop under load; 153-superlinearity lever
    dram_cycles=320.0,
    stream_visibility=0.25,           # in-order core, software prefetch only
    mem_banks=16,
    dram_transfer_cycles=1.2,
    atomic_cycles=70.0,
    lock_cycles=120.0,
    barrier_hop_cycles=60.0,
    fork_cycles=800.0,
    alloc_cycles=600.0,               # FreeBSD-derivative uOS malloc
    spawn_cycles=90.0,
    steal_cycles=350.0,
    sched_chunk_cycles=12.0,
    tls_init_cycles_per_entry=1.0,
)

#: Dual Intel Xeon X5680 host (§V-A): 2 × 6 OoO cores at 3.33 GHz with
#: HyperThreading, 12 MiB shared L3 per socket, DDR3.
HOST_XEON = MachineConfig(
    name="HOST_XEON",
    n_cores=12,
    smt_per_core=2,
    issue_width=3.0,                  # out-of-order superscalar
    line_bytes=64,
    cache_lines_per_core=32768,       # 2 MiB effective L3 share per core
    local_hit_cycles=35.0,            # L3-ish; L1/L2 hits are in issue cost
    remote_hit_cycles=110.0,          # QPI snoop
    dram_cycles=220.0,
    stream_visibility=0.05,           # hardware prefetchers hide streams
    mem_banks=6,
    dram_transfer_cycles=2.0,
    atomic_cycles=45.0,
    lock_cycles=80.0,
    barrier_hop_cycles=45.0,
    fork_cycles=1500.0,
    alloc_cycles=250.0,
    spawn_cycles=60.0,
    steal_cycles=220.0,
    sched_chunk_cycles=8.0,
    tls_init_cycles_per_entry=0.5,
)
