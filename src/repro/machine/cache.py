"""Cache / locality model: prices every CSR adjacency access.

The graph kernels' dominant memory traffic is the *random* read of a
per-vertex state array (``color[w]``, ``bfs[w]``, ``state[w]``) for every
neighbour ``w``, plus the *streamed* scan of the CSR adjacency itself.
This module turns the graph structure and an ordering into per-vertex
expected stall cycles and DRAM line volumes — vectorised over all CSR
entries at once — which :mod:`repro.machine.costs` assembles into kernel
cost arrays.

Model (DESIGN.md §3).  For an access by vertex ``v`` to neighbour ``w``:

* the **reuse distance** is proxied by the vertex-ID distance
  ``d = |v - w|`` times the sweep footprint per vertex (state + adjacency
  + neighbour lines).  Natural FEM orderings keep ``d`` within the band,
  a random shuffle makes ``d ~ n/3`` — destroying locality exactly as the
  paper's §V-B shuffle does;
* the access hits the core's private cache with probability
  ``exp(-(reuse / share)**2)`` — an LRU-like capacity knee — where
  ``share`` is the per-core cache divided by co-resident SMT threads
  (SMT pressure);
* a local miss finds the line in a *peer* cache with probability
  ``min(1, other_cores_cache / working_set)`` — as more cores are used the
  hot array becomes chip-resident and misses are served at ring latency
  instead of DRAM.  This is the aggregate-cache effect behind the paper's
  super-linear speedup 153 on shuffled graphs (Fig. 2);
* the remainder goes to DRAM: full latency plus a line of channel volume.

``cache_scale`` shrinks the simulated cache to match a scaled-down graph
(suite graphs are ≈1/8 of the paper's, so the cache is too — keeping the
working-set/cache ratio of the real machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.config import MachineConfig
from repro.obs import metrics as _obs_metrics

__all__ = ["AccessProfile", "access_profile", "access_profile_cached"]

#: Bytes per CSR index entry (int32 adjacency, as in the paper's C codes).
INDEX_BYTES = 4


@dataclass(frozen=True)
class AccessProfile:
    """Per-vertex expected memory behaviour of one adjacency sweep.

    Attributes
    ----------
    stall:
        Expected exposed latency cycles per vertex (random state reads at
        their blended hit/miss cost, plus the visible part of the adjacency
        stream).
    volume:
        Expected DRAM lines transferred per vertex (random misses plus the
        streamed adjacency).
    p_local / p_remote / p_dram:
        Edge-weighted average hit fractions (for reports and tests).
    """

    stall: np.ndarray
    volume: np.ndarray
    p_local: float
    p_remote: float
    p_dram: float


def _segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum *values* over CSR segments (robust to empty segments)."""
    cs = np.concatenate([[0.0], np.cumsum(values)])
    return cs[indptr[1:]] - cs[indptr[:-1]]


def access_profile(
    graph: CSRGraph,
    config: MachineConfig,
    n_threads: int,
    state_bytes: int = 4,
    cache_scale: float = 1.0,
) -> AccessProfile:
    """Price one full adjacency sweep of *graph* under *n_threads*.

    ``state_bytes`` is the element size of the randomly-accessed state
    array (4 for ``color``/``bfs`` int arrays, 8 for the microbenchmark's
    doubles).
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    if state_bytes < 1:
        raise ValueError(f"state_bytes must be >= 1, got {state_bytes}")
    if cache_scale <= 0:
        raise ValueError(f"cache_scale must be > 0, got {cache_scale}")

    n = graph.n_vertices
    if n == 0:
        empty = np.zeros(0)
        return AccessProfile(empty, empty, 1.0, 0.0, 0.0)

    line = config.line_bytes
    degrees = graph.degrees.astype(np.float64)
    avg_deg = max(1.0, float(degrees.mean()))

    # --- per-entry local-hit probability --------------------------------
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    dist = np.abs(src - graph.indices.astype(np.int64)).astype(np.float64)
    # Sweep footprint: *new* lines touched per vertex swept — its
    # state-array share and its adjacency-stream share.  (Neighbour lines
    # are not counted separately: in a banded ordering consecutive
    # vertices revisit the same neighbour lines, and in a shuffled
    # ordering the ID-distance term below already drives the reuse
    # distance past any cache size.)
    footprint = state_bytes / line + avg_deg * INDEX_BYTES / line + 0.5
    reuse = footprint * dist

    threads_per_core = -(-n_threads // config.n_cores)
    cores_used = min(n_threads, config.n_cores)
    per_core_lines = config.cache_lines_per_core * cache_scale
    share = max(1.0, per_core_lines / threads_per_core)
    # LRU-like capacity curve: a reuse distance below the cache share is
    # (nearly) always a hit, beyond it (nearly) always a miss; the squared
    # exponent gives the sharp-but-smooth knee of real set-associative
    # caches.  Banded FEM orderings land well inside the knee (~97% hits),
    # the §V-B shuffle lands far outside (~0%).
    p_local = np.exp(-((reuse / share) ** 2))

    # --- chip residency of the hot state array --------------------------
    state_lines = n * state_bytes / line
    other_cache = per_core_lines * max(0, cores_used - 1)
    residency = min(1.0, other_cache / max(1.0, state_lines))
    p_remote = (1.0 - p_local) * residency
    p_dram = (1.0 - p_local) * (1.0 - residency)

    per_entry_stall = (p_local * config.local_hit_cycles
                       + p_remote * config.remote_hit_cycles
                       + p_dram * config.dram_cycles)

    # --- aggregate per vertex (segment sums over the CSR layout) ---------
    stall = _segment_sum(per_entry_stall, graph.indptr)
    volume = _segment_sum(p_dram, graph.indptr)

    # Streamed adjacency: deg * INDEX_BYTES / line lines per vertex, mostly
    # hidden by prefetch (config.stream_visibility exposes a fraction).
    stream_lines = degrees * INDEX_BYTES / line
    volume += stream_lines
    stall += config.stream_visibility * config.dram_cycles * stream_lines

    total = max(1, len(src))
    return AccessProfile(
        stall=stall,
        volume=volume,
        p_local=float(p_local.sum() / total),
        p_remote=float(p_remote.sum() / total),
        p_dram=float(p_dram.sum() / total),
    )


@lru_cache(maxsize=1024)
def _access_profile_lru(graph: CSRGraph, config: MachineConfig,
                        n_threads: int, state_bytes: int,
                        cache_scale: float) -> AccessProfile:
    return access_profile(graph, config, n_threads, state_bytes, cache_scale)


def access_profile_cached(graph: CSRGraph, config: MachineConfig,
                          n_threads: int, state_bytes: int = 4,
                          cache_scale: float = 1.0) -> AccessProfile:
    """Memoised :func:`access_profile` (graphs hash by identity).

    Thread sweeps recompute the same per-edge pricing many times; this
    keeps the experiment harness linear in distinct configurations.

    When a metrics registry (:mod:`repro.obs.metrics`) is active, every
    *use* of a profile — memoised or not — records the expected cache
    hit-tier split of the sweep (local / peer / DRAM accesses) so the
    per-loop frames can attribute memory behaviour; the recording sits
    outside the LRU wrapper on purpose.
    """
    profile = _access_profile_lru(graph, config, n_threads, state_bytes,
                                  cache_scale)
    registry = _obs_metrics.active()
    if registry is not None:
        accesses = float(graph.n_directed_entries)
        registry.counter("cache.sweeps").inc(1)
        registry.counter("cache.accesses", tier="local").inc(
            profile.p_local * accesses)
        registry.counter("cache.accesses", tier="peer").inc(
            profile.p_remote * accesses)
        registry.counter("cache.accesses", tier="dram").inc(
            profile.p_dram * accesses)
    return profile
