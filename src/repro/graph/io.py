"""Graph I/O: MatrixMarket pattern files and plain edge lists.

The paper's graphs ship as MatrixMarket files from the UF collection; this
module reads/writes the ``matrix coordinate pattern symmetric`` dialect
(plus ``general`` and value-carrying variants, values ignored) so real UF
files drop in directly when available, and a whitespace edge-list format
for quick interchange.

Both readers validate their input and raise :class:`ValueError` naming
the file (and line, where known) on malformed data: non-integer tokens,
vertex ids out of range, an entry count that contradicts the declared
size.  By default (``strict=True``) self-loops and duplicate edges are
rejected too — in a hand-written experiment graph they are almost always
typos that would silently shrink the edge count.  Pass ``strict=False``
for real-world matrices where they are expected (UF matrices carry
diagonal entries; the loader then drops loops and merges duplicates,
matching :meth:`CSRGraph.from_edges`).  Mirrored entries (``u v`` and
``v u``) in a MatrixMarket *general* file are not duplicates — they are
how that dialect spells an undirected edge.
"""

from __future__ import annotations

import os

import numpy as np
from numpy.typing import NDArray

from repro.graph.csr import CSRGraph

__all__ = ["read_matrix_market", "write_matrix_market", "read_edge_list",
           "write_edge_list", "load_graph"]


def _validate_edges(path: str, n: int, edges: NDArray[np.int64],
                    strict: bool, ordered_dupes: bool) -> None:
    """Common malformed-edge checks, errors prefixed with *path*.

    ``ordered_dupes`` selects the duplicate criterion: exact repeated
    entries (MatrixMarket, where ``u v`` / ``v u`` legitimately mirror
    one undirected edge) versus duplicates up to direction (edge lists,
    which store each undirected edge once).
    """
    if len(edges) == 0:
        return
    if edges.min() < 0 or edges.max() >= n:
        bad = edges[((edges < 0) | (edges >= n)).any(axis=1)][0]
        raise ValueError(
            f"{path}: vertex id out of range: edge ({bad[0]}, {bad[1]}) "
            f"with {n} vertices declared")
    if not strict:
        return
    loops = edges[:, 0] == edges[:, 1]
    if loops.any():
        v = int(edges[loops][0, 0])
        raise ValueError(
            f"{path}: self-loop on vertex {v} (pass strict=False to drop "
            "self-loops, e.g. for UF matrices with diagonal entries)")
    keyed = edges if ordered_dupes else np.sort(edges, axis=1)
    uniq, counts = np.unique(keyed, axis=0, return_counts=True)
    if (counts > 1).any():
        dup = uniq[counts > 1][0]
        raise ValueError(
            f"{path}: duplicate edge ({dup[0]}, {dup[1]}) (pass "
            "strict=False to merge duplicates)")


def read_matrix_market(path: str | os.PathLike[str], name: str | None = None,
                       strict: bool = True) -> CSRGraph:
    """Read a MatrixMarket coordinate file as an undirected pattern graph.

    With ``strict`` (the default) self-loops and exactly-repeated entries
    raise :class:`ValueError`; ``strict=False`` drops/merges them (the
    drop-in behaviour for real UF matrices, whose FEM diagonals are
    stored as self-loops).  Mirrored ``u v`` / ``v u`` entries in a
    *general* file are always legal — they denote one undirected edge.
    """
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        fields = header.lower().split()
        if "coordinate" not in fields:
            raise ValueError(f"{path}: only coordinate format is supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"{path}: malformed size line {line!r}")
        try:
            rows, cols, nnz = (int(p) for p in parts)
        except ValueError:
            raise ValueError(f"{path}: malformed size line {line!r}") from None
        if rows != cols:
            raise ValueError(f"{path}: matrix is {rows}x{cols}, need square")
        if rows < 0 or nnz < 0:
            raise ValueError(f"{path}: negative size line {line!r}")
        try:
            data = np.loadtxt(fh, ndmin=2, usecols=(0, 1), dtype=np.int64,
                              max_rows=nnz)
        except ValueError as exc:
            raise ValueError(f"{path}: malformed entry: {exc}") from None
    if data.size == 0:
        data = data.reshape(0, 2)
    if len(data) != nnz:
        raise ValueError(f"{path}: header declares {nnz} entries, "
                         f"file has {len(data)}")
    edges = data - 1  # MatrixMarket is 1-based
    # Mirrored general-dialect pairs collapse to one undirected edge, so
    # duplicate detection keys on the *ordered* (as-written) entry.
    _validate_edges(path, rows, edges, strict, ordered_dupes=True)
    return CSRGraph.from_edges(rows, edges,
                               name=name or os.path.splitext(os.path.basename(path))[0])


def write_matrix_market(graph: CSRGraph, path: str | os.PathLike[str]) -> None:
    """Write *graph* as ``matrix coordinate pattern symmetric`` (lower triangle)."""
    edges = graph.edge_array()  # u < v once per edge
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"% written by repro: {graph.name}\n")
        fh.write(f"{graph.n_vertices} {graph.n_vertices} {len(edges)}\n")
        # symmetric dialect stores the lower triangle: row >= col, 1-based
        for u, v in edges:
            fh.write(f"{v + 1} {u + 1}\n")


def read_edge_list(path: str | os.PathLike[str], name: str | None = None,
                   strict: bool = True) -> CSRGraph:
    """Read ``u v`` pairs (0-based, ``#`` comments allowed), one per line.

    With ``strict`` (the default) negative ids, self-loops and duplicate
    edges — in either direction, since the format stores each undirected
    edge once — raise :class:`ValueError` naming the offending line;
    ``strict=False`` drops loops and merges duplicates instead.
    """
    path = os.fspath(path)
    edges: list[tuple[int, int]] = []
    n = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: non-integer vertex id in "
                    f"{line!r}") from None
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{lineno}: negative vertex id in edge ({u}, {v})")
            if strict and u == v:
                raise ValueError(
                    f"{path}:{lineno}: self-loop on vertex {u} (pass "
                    "strict=False to drop self-loops)")
            edges.append((u, v))
            n = max(n, u + 1, v + 1)
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    _validate_edges(path, n, arr, strict, ordered_dupes=False)
    return CSRGraph.from_edges(n, arr,
                               name=name or os.path.splitext(os.path.basename(path))[0])


def write_edge_list(graph: CSRGraph, path: str | os.PathLike[str]) -> None:
    """Write each undirected edge once as ``u v`` (0-based)."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}: {graph.n_vertices} vertices, {graph.n_edges} edges\n")
        for u, v in graph.edge_array():
            fh.write(f"{u} {v}\n")


def load_graph(path: str | os.PathLike[str], name: str | None = None,
               strict: bool = True) -> CSRGraph:
    """Dispatch on extension: ``.mtx`` → MatrixMarket, anything else → edge list."""
    if os.fspath(path).endswith(".mtx"):
        return read_matrix_market(path, name=name, strict=strict)
    return read_edge_list(path, name=name, strict=strict)
