"""Graph I/O: MatrixMarket pattern files and plain edge lists.

The paper's graphs ship as MatrixMarket files from the UF collection; this
module reads/writes the ``matrix coordinate pattern symmetric`` dialect
(plus ``general`` and value-carrying variants, values ignored) so real UF
files drop in directly when available, and a whitespace edge-list format
for quick interchange.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["read_matrix_market", "write_matrix_market", "read_edge_list",
           "write_edge_list", "load_graph"]


def read_matrix_market(path: str | os.PathLike, name: str | None = None) -> CSRGraph:
    """Read a MatrixMarket coordinate file as an undirected pattern graph."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        fields = header.lower().split()
        if "coordinate" not in fields:
            raise ValueError(f"{path}: only coordinate format is supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"{path}: malformed size line {line!r}")
        rows, cols, nnz = (int(p) for p in parts)
        if rows != cols:
            raise ValueError(f"{path}: matrix is {rows}x{cols}, need square")
        data = np.loadtxt(fh, ndmin=2, usecols=(0, 1), dtype=np.int64, max_rows=nnz)
    if data.size == 0:
        data = data.reshape(0, 2)
    edges = data - 1  # MatrixMarket is 1-based
    return CSRGraph.from_edges(rows, edges,
                               name=name or os.path.splitext(os.path.basename(path))[0])


def write_matrix_market(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write *graph* as ``matrix coordinate pattern symmetric`` (lower triangle)."""
    edges = graph.edge_array()  # u < v once per edge
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"% written by repro: {graph.name}\n")
        fh.write(f"{graph.n_vertices} {graph.n_vertices} {len(edges)}\n")
        # symmetric dialect stores the lower triangle: row >= col, 1-based
        for u, v in edges:
            fh.write(f"{v + 1} {u + 1}\n")


def read_edge_list(path: str | os.PathLike, name: str | None = None) -> CSRGraph:
    """Read ``u v`` pairs (0-based, ``#`` comments allowed), one per line."""
    path = os.fspath(path)
    edges = []
    n = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            edges.append((u, v))
            n = max(n, u + 1, v + 1)
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2),
                               name=name or os.path.splitext(os.path.basename(path))[0])


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write each undirected edge once as ``u v`` (0-based)."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}: {graph.n_vertices} vertices, {graph.n_edges} edges\n")
        for u, v in graph.edge_array():
            fh.write(f"{u} {v}\n")


def load_graph(path: str | os.PathLike, name: str | None = None) -> CSRGraph:
    """Dispatch on extension: ``.mtx`` → MatrixMarket, anything else → edge list."""
    if os.fspath(path).endswith(".mtx"):
        return read_matrix_market(path, name=name)
    return read_edge_list(path, name=name)
