"""Compressed-sparse-row (CSR) graph.

The whole library works on undirected simple graphs stored in CSR form with
both directions of every edge materialised (the layout the paper's C codes
use, and the layout the machine cost model prices: ``indptr`` of size
``n + 1`` and ``indices`` of size ``2|E|``).

Construction is fully vectorised (sort + dedupe with numpy) so that the
suite graphs (hundreds of thousands of edges) build in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_int_array

__all__ = ["CSRGraph"]


@dataclass(frozen=True, eq=False)  # identity semantics: usable as cache key
class CSRGraph:
    """An undirected simple graph in CSR (adjacency-array) form.

    Instances compare and hash by identity (two separately-built graphs
    are distinct cache keys even if structurally equal; use
    :meth:`structurally_equal` for content comparison).

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n_vertices + 1``; the neighbours of
        vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of neighbour IDs, sorted within each vertex's
        adjacency list. Each undirected edge appears twice.
    """

    indptr: np.ndarray
    indices: np.ndarray
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "_degrees", np.diff(indptr))
        self.validate()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n_vertices: int, edges, name: str = "graph") -> "CSRGraph":
        """Build from an iterable/array of ``(u, v)`` pairs.

        Self-loops are dropped, duplicates merged, and the graph is
        symmetrised (an edge listed in either direction yields both CSR
        entries).
        """
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be >= 0, got {n_vertices}")
        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                           dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError("edge endpoint out of range")
        u, v = edges[:, 0], edges[:, 1]
        keep = u != v
        u, v = u[keep], v[keep]
        # Symmetrise, then sort lexicographically and remove duplicates.
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            uniq = np.empty(src.size, dtype=bool)
            uniq[0] = True
            np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=uniq[1:])
            src, dst = src[uniq], dst[uniq]
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr=indptr, indices=dst.astype(np.int32), name=name)

    @classmethod
    def from_validated_arrays(cls, indptr: np.ndarray, indices: np.ndarray,
                              name: str = "graph") -> "CSRGraph":
        """Adopt CSR arrays that already satisfy :meth:`validate`, zero-copy.

        The normal constructor copies into contiguous buffers and runs the
        full O(n + m) validation — both of which defeat lazy memory-mapped
        loading (``repro.graphstore`` maps multi-hundred-MB ``indices``
        sections that must not be paged in up front).  Callers promise the
        arrays are structurally valid (the ``.rgr`` format guarantees this
        at write time and guards integrity with checksums); only O(1)
        anchors are checked here.
        """
        if indptr.dtype != np.int64 or indices.dtype != np.int32:
            raise ValueError(
                f"expected int64 indptr / int32 indices, got "
                f"{indptr.dtype}/{indices.dtype}")
        if indptr.ndim != 1 or indices.ndim != 1 or len(indptr) < 1:
            raise ValueError("indptr/indices must be 1-D with len(indptr) >= 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        graph = object.__new__(cls)
        object.__setattr__(graph, "indptr", indptr)
        object.__setattr__(graph, "indices", indices)
        object.__setattr__(graph, "name", name)
        object.__setattr__(graph, "_degrees", np.diff(indptr))
        return graph

    @classmethod
    def from_scipy(cls, matrix, name: str = "graph") -> "CSRGraph":
        """Build from a scipy sparse matrix (pattern only, symmetrised)."""
        import scipy.sparse as sp

        m = sp.coo_matrix(matrix)
        if m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got shape {m.shape}")
        edges = np.stack([m.row, m.col], axis=1)
        return cls.from_edges(m.shape[0], edges, name=name)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of *undirected* edges (half the CSR entry count)."""
        return len(self.indices) // 2

    @property
    def n_directed_entries(self) -> int:
        """Number of CSR adjacency entries (``2 * n_edges``)."""
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degree array (read-only view)."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Δ — the maximum vertex degree (0 for an empty graph)."""
        return int(self._degrees.max()) if self.n_vertices else 0

    @property
    def average_degree(self) -> float:
        """Mean vertex degree."""
        return float(self._degrees.mean()) if self.n_vertices else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour IDs of vertex *v* (a zero-copy CSR slice)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge (binary search, adjacency sorted)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < len(nbrs) and nbrs[i] == v)

    def edge_array(self) -> np.ndarray:
        """Return each undirected edge once as an ``(m, 2)`` array, u < v."""
        src = np.repeat(np.arange(self.n_vertices, dtype=np.int64), self._degrees)
        dst = self.indices.astype(np.int64)
        keep = src < dst
        return np.stack([src[keep], dst[keep]], axis=1)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def permute(self, perm, name: str | None = None) -> "CSRGraph":
        """Relabel vertices: new ID of old vertex ``v`` is ``perm[v]``.

        ``perm`` must be a permutation of ``0..n-1``. Adjacency structure is
        preserved; only IDs (hence memory-locality behaviour) change.
        """
        perm = as_int_array(perm, "perm")
        n = self.n_vertices
        if len(perm) != n:
            raise ValueError(f"perm has length {len(perm)}, expected {n}")
        check = np.zeros(n, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ValueError("perm is not a permutation")
        src = perm[np.repeat(np.arange(n, dtype=np.int64), self._degrees)]
        dst = perm[self.indices.astype(np.int64)]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr=indptr, indices=dst.astype(np.int32),
                        name=name or f"{self.name}-permuted")

    def structurally_equal(self, other: "CSRGraph") -> bool:
        """Content equality: same CSR arrays (names ignored)."""
        return (isinstance(other, CSRGraph)
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices))

    def to_scipy(self):
        """Export as a ``scipy.sparse.csr_matrix`` pattern (all ones)."""
        import scipy.sparse as sp

        data = np.ones(len(self.indices), dtype=np.int8)
        return sp.csr_matrix((data, self.indices, self.indptr),
                             shape=(self.n_vertices, self.n_vertices))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on failure.

        Invariants: monotone ``indptr`` anchored at 0 and ``len(indices)``;
        neighbour IDs in range and sorted per vertex; no self-loops; the
        adjacency is symmetric.
        """
        indptr, indices = self.indptr, self.indices
        if len(indptr) < 1 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = self.n_vertices
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("neighbour ID out of range")
        src = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
        if np.any(src == indices):
            raise ValueError("self-loop present")
        # Sorted adjacency per vertex: within a row, indices strictly increase.
        same_row = src[1:] == src[:-1] if len(src) else np.empty(0, dtype=bool)
        if np.any(same_row & (indices[1:] <= indices[:-1])):
            raise ValueError("adjacency lists must be strictly increasing")
        # Symmetry: the reversed edge set must equal the forward edge set.
        fwd = src * np.int64(n) + indices
        rev = indices * np.int64(n) + src
        if not np.array_equal(np.sort(fwd), np.sort(rev)):
            raise ValueError("adjacency is not symmetric")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRGraph(name={self.name!r}, n_vertices={self.n_vertices}, "
                f"n_edges={self.n_edges}, max_degree={self.max_degree})")
