"""Structural property reports (the ingredients of the paper's Table I).

Table I lists, per graph: |V|, |E|, Δ, the number of colours used by a
sequential run of the greedy algorithm, and the number of levels of a BFS
from vertex ``|V| / 2``.  :func:`graph_properties` computes exactly those,
plus a few extras used by tests and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphProperties", "graph_properties", "bfs_levels",
           "connected_components", "bandwidth", "envelope_profile",
           "degree_histogram", "locality_summary"]


@dataclass(frozen=True)
class GraphProperties:
    """One row of Table I (plus average degree and component count)."""

    name: str
    n_vertices: int
    n_edges: int
    max_degree: int
    average_degree: float
    n_colors: int
    n_bfs_levels: int
    n_components: int

    def as_row(self) -> tuple:
        """Row in Table I column order: name, |V|, |E|, Δ, #Color, #Level."""
        return (self.name, self.n_vertices, self.n_edges, self.max_degree,
                self.n_colors, self.n_bfs_levels)


def bfs_levels(graph: CSRGraph, source: int | None = None) -> int:
    """Number of BFS levels from *source* (default: vertex ``|V| // 2``).

    Counts levels the paper's way: the source is level 0 and the count is
    the number of non-empty frontiers, restricted to the source's component.
    """
    from repro.kernels.bfs.sequential import bfs_sequential

    if source is None:
        source = graph.n_vertices // 2
    dist = bfs_sequential(graph, source)
    reached = dist[dist >= 0]
    return int(reached.max()) + 1 if reached.size else 0


def connected_components(graph: CSRGraph) -> int:
    """Number of connected components (scipy union over the CSR pattern)."""
    from scipy.sparse.csgraph import connected_components as _cc

    if graph.n_vertices == 0:
        return 0
    n, _ = _cc(graph.to_scipy(), directed=False)
    return int(n)


def bandwidth(graph: CSRGraph) -> int:
    """Matrix bandwidth: ``max |u - v|`` over edges (0 for edgeless graphs).

    The quantity the §V-B shuffle maximises and RCM minimises; the cache
    model's reuse distances scale with it.
    """
    if not len(graph.indices):
        return 0
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees)
    return int(np.abs(src - graph.indices).max())


def envelope_profile(graph: CSRGraph) -> int:
    """Envelope (profile) size: ``sum_v max(0, v - min(adj(v)))``.

    The classic sparse-matrix storage metric that bandwidth-reducing
    orderings optimise; reported alongside Table I in the docs.
    """
    n = graph.n_vertices
    if not len(graph.indices):
        return 0
    first = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    np.minimum.at(first, src, graph.indices.astype(np.int64))
    has = graph.degrees > 0
    return int(np.maximum(0, np.arange(n)[has] - first[has]).sum())


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices of degree ``d``."""
    if graph.n_vertices == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(graph.degrees).astype(np.int64)


def locality_summary(graph: CSRGraph) -> dict:
    """Ordering-locality statistics the cache model depends on:
    mean/median/max vertex-ID distance over edges, and bandwidth."""
    if not len(graph.indices):
        return {"mean_distance": 0.0, "median_distance": 0.0,
                "max_distance": 0, "bandwidth": 0}
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees)
    d = np.abs(src - graph.indices)
    return {
        "mean_distance": float(d.mean()),
        "median_distance": float(np.median(d)),
        "max_distance": int(d.max()),
        "bandwidth": int(d.max()),
    }


def graph_properties(graph: CSRGraph, source: int | None = None) -> GraphProperties:
    """Compute the Table I row for *graph* (sequential greedy colours included)."""
    from repro.kernels.coloring.sequential import greedy_coloring

    n_colors, _ = greedy_coloring(graph)
    return GraphProperties(
        name=graph.name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        max_degree=graph.max_degree,
        average_degree=graph.average_degree,
        n_colors=n_colors,
        n_bfs_levels=bfs_levels(graph, source),
        n_components=connected_components(graph),
    )
