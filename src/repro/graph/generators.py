"""Synthetic graph generators.

The paper evaluates on seven finite-element / structural matrices from the
UF Sparse Matrix Collection.  Those files are not available offline, so
:func:`fem_mesh` generates structural analogs: overlapping element cliques
laid out along a 1-D band, which reproduces the three properties the
kernels are sensitive to —

* **degree distribution** (``elem_size`` controls clique size, hence greedy
  colour count; ``elems_per_vertex`` controls average degree; ``hubs``
  inject the matrices' few very-high-degree rows),
* **bandedness** (``window`` controls how far an element reaches, i.e. the
  natural-ordering locality that the machine cache model prices), and
* **BFS depth** (the band width sets how far a frontier advances per level,
  so ``window`` also fixes the level count — ``pwtk``'s 267 levels come
  from a narrow window).

All generators are vectorised and deterministic given a seed.

The random-structure generators stream: edges are emitted in bounded
blocks into :class:`repro.graphstore.builder.StreamingCSRBuilder`
instead of materialising the full ``(u, v)`` edge array, so peak RSS is
O(n + block) and instances scale to 10⁶–10⁷ vertices.  RNG draws are
chunked **along the first axis only**, which numpy's ``Generator``
guarantees to be bit-identical to one whole-array draw — every graph
(including the seven suite graphs pinned by committed baselines) is
byte-for-byte the same as the pre-streaming implementation produced.
``rmat`` is the one exception: its bit-major sampling loop draws one
``random(m)`` vector per scale bit, an order that cannot be edge-chunked
without changing RNG consumption, so it keeps two O(m) endpoint arrays
and streams only the CSR assembly.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive, rng_from_seed
from repro.graph.csr import CSRGraph
from repro.graphstore.builder import StreamingCSRBuilder

__all__ = [
    "fem_mesh",
    "tube_mesh",
    "grid2d",
    "grid3d",
    "erdos_renyi",
    "rmat",
    "chain",
    "star",
    "complete",
    "random_regular_ish",
]


def fem_mesh(
    n: int,
    elem_size: int,
    elems_per_vertex: float,
    window: int,
    hubs: int = 0,
    hub_degree: int = 0,
    seed=0,
    name: str = "fem_mesh",
) -> CSRGraph:
    """Banded finite-element-style graph.

    ``n * elems_per_vertex / elem_size`` cliques of ``elem_size`` vertices
    are placed along the vertex line; each element draws its members from a
    ``window``-wide interval around its centre.  A backbone chain
    ``0-1-...-n-1`` guarantees connectivity (and mirrors the diagonal band
    every FEM matrix has).  ``hubs`` vertices additionally connect to
    ``hub_degree`` vertices within three windows, mimicking the high-degree
    rows (Δ up to 842 in ``inline_1``).
    """
    check_positive("n", n)
    check_positive("elem_size", elem_size)
    check_positive("elems_per_vertex", elems_per_vertex)
    check_positive("window", window)
    if elem_size > n:
        raise ValueError(f"elem_size {elem_size} exceeds n {n}")
    rng = rng_from_seed(seed)

    n_elems = max(1, int(round(n * elems_per_vertex / elem_size)))
    centers = np.linspace(0, n - 1, n_elems)
    half = max(1, window // 2)
    iu, iv = np.triu_indices(elem_size, k=1)
    builder = StreamingCSRBuilder(n)
    pairs_per_elem = max(1, len(iu))
    elem_chunk = max(1, builder.block_edges // pairs_per_elem)
    for e0 in range(0, n_elems, elem_chunk):
        e1 = min(n_elems, e0 + elem_chunk)
        offsets = rng.integers(-half, half + 1, size=(e1 - e0, elem_size))
        members = np.clip(centers[e0:e1, None] + offsets,
                          0, n - 1).astype(np.int64)
        builder.add_edges(members[:, iu].ravel(), members[:, iv].ravel())

    _emit_spine(builder, n)

    if hubs > 0 and hub_degree > 0:
        hub_ids = rng.choice(n, size=hubs, replace=False).astype(np.int64)
        reach = max(2, 3 * half)
        spokes = rng.integers(-reach, reach + 1, size=(hubs, hub_degree))
        targets = np.clip(hub_ids[:, None] + spokes, 0, n - 1).astype(np.int64)
        builder.add_edges(np.repeat(hub_ids, hub_degree), targets.ravel())

    return builder.finalize(name=name)


def _emit_spine(builder: StreamingCSRBuilder, n: int) -> None:
    """Backbone chain ``0-1-...-n-1``, emitted in builder-sized blocks."""
    block = builder.block_edges
    for i0 in range(0, n - 1, block):
        i = np.arange(i0, min(n - 1, i0 + block), dtype=np.int64)
        builder.add_edges(i, i + 1)


def tube_mesh(
    n: int,
    section: int,
    clique: int,
    cliques_per_vertex: float = 1.0,
    coupling: int = 4,
    coupling_window: int | None = None,
    hubs: int = 0,
    hub_degree: int = 0,
    seed=0,
    name: str = "tube_mesh",
) -> CSRGraph:
    """Extruded ("tube") finite-element mesh.

    Vertices are numbered section by section: vertex ``sec * section + pos``.
    Each section carries overlapping cliques of ``clique`` consecutive
    vertices (``cliques_per_vertex`` coverage — this drives the greedy
    colour count), and every vertex couples to ``coupling`` vertices at
    aligned positions in the *next* section (this drives average degree and
    limits a BFS frontier to one section per level, so the level count is
    ``≈ n / section``).  This is the structure of the paper's long, narrow
    matrices — ``pwtk``, a wind-tunnel stiffness matrix with 267 BFS levels,
    is exactly such a tube.
    """
    check_positive("n", n)
    check_positive("section", section)
    check_positive("clique", clique)
    check_positive("cliques_per_vertex", cliques_per_vertex)
    if clique > section:
        raise ValueError(f"clique {clique} exceeds section {section}")
    if section > n:
        raise ValueError(f"section {section} exceeds n {n}")
    rng = rng_from_seed(seed)

    n_sections = -(-n // section)  # ceil: trailing partial section included
    # Run start positions: a regular stride of clique/cliques_per_vertex so
    # consecutive runs overlap deterministically (keeping every section
    # internally connected through its cliques), plus a small jitter for
    # irregularity.  Random placement would make intra-section connectivity
    # a percolation accident and the BFS depth wildly unstable.
    stride = max(1, int(round(clique / cliques_per_vertex)))
    run_offsets = np.arange(0, max(1, section - clique + 1), stride, dtype=np.int64)
    runs_per_section = len(run_offsets)
    jitter_span = max(1, stride // 3)
    iu, iv = np.triu_indices(clique, k=1)
    builder = StreamingCSRBuilder(n)
    pairs_per_section = max(1, runs_per_section * len(iu))
    sec_chunk = max(1, builder.block_edges // pairs_per_section)
    for s0 in range(0, n_sections, sec_chunk):
        s1 = min(n_sections, s0 + sec_chunk)
        sec_base = (np.arange(s0, s1, dtype=np.int64) * section)[:, None]
        jitter = rng.integers(-jitter_span, jitter_span + 1,
                              size=(s1 - s0, runs_per_section))
        starts = np.clip(sec_base + run_offsets[None, :] + jitter, sec_base,
                         sec_base + max(0, section - clique))
        starts = np.minimum(starts, max(0, n - clique))
        starts = starts.reshape(-1, 1)
        members = starts + np.arange(clique, dtype=np.int64)[None, :]
        members = np.minimum(members, n - 1)
        builder.add_edges(members[:, iu].ravel(), members[:, iv].ravel())

    if coupling > 0 and n_sections > 1:
        cw = coupling_window if coupling_window is not None else max(2, clique)
        half = max(1, cw // 2)
        limit = min(n, (n_sections - 1) * section)
        v_chunk = max(1, builder.block_edges // max(1, coupling))
        for i0 in range(0, limit, v_chunk):
            i1 = min(limit, i0 + v_chunk)
            v_ids = np.arange(i0, i1, dtype=np.int64)
            offs = rng.integers(-half, half + 1, size=(i1 - i0, coupling))
            pos = v_ids % section
            tgt_pos = np.clip(pos[:, None] + offs, 0, section - 1)
            tgt = (v_ids // section + 1)[:, None] * section + tgt_pos
            src = np.repeat(v_ids, coupling)
            tgt = tgt.ravel()
            valid = tgt < n  # partial trailing section: drop, don't pile up
            builder.add_edges(src[valid], tgt[valid])

    _emit_spine(builder, n)

    if hubs > 0 and hub_degree > 0:
        hub_ids = rng.choice(n, size=hubs, replace=False).astype(np.int64)
        reach = 2 * section
        spokes = rng.integers(-reach, reach + 1, size=(hubs, hub_degree))
        targets = np.clip(hub_ids[:, None] + spokes, 0, n - 1).astype(np.int64)
        builder.add_edges(np.repeat(hub_ids, hub_degree), targets.ravel())

    return builder.finalize(name=name)


def grid2d(nx: int, ny: int, diagonal: bool = False, name: str = "grid2d") -> CSRGraph:
    """``nx × ny`` lattice in row-major order; 4-point or 8-point stencil."""
    check_positive("nx", nx)
    check_positive("ny", ny)
    idx = np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)
    parts = [
        np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1),
        np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1),
    ]
    if diagonal:
        parts.append(np.stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()], axis=1))
        parts.append(np.stack([idx[:-1, 1:].ravel(), idx[1:, :-1].ravel()], axis=1))
    edges = np.concatenate(parts, axis=0) if parts else np.empty((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(nx * ny, edges, name=name)


def grid3d(nx: int, ny: int, nz: int, name: str = "grid3d") -> CSRGraph:
    """``nx × ny × nz`` lattice with a 6-point stencil."""
    check_positive("nx", nx)
    check_positive("ny", ny)
    check_positive("nz", nz)
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    parts = [
        np.stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()], axis=1),
        np.stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()], axis=1),
        np.stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()], axis=1),
    ]
    edges = np.concatenate(parts, axis=0)
    return CSRGraph.from_edges(nx * ny * nz, edges, name=name)


def erdos_renyi(n: int, m: int, seed=0, name: str = "erdos_renyi") -> CSRGraph:
    """G(n, m)-style random graph: *m* edge slots sampled uniformly.

    Duplicates and self-loops are dropped, so the realised edge count is
    slightly below *m* for dense settings.
    """
    check_positive("n", n)
    rng = rng_from_seed(seed)
    builder = StreamingCSRBuilder(n)
    for i0 in range(0, m, builder.block_edges):
        k = min(builder.block_edges, m - i0)
        edges = rng.integers(0, n, size=(k, 2), dtype=np.int64)
        builder.add_edges(edges[:, 0], edges[:, 1])
    return builder.finalize(name=name)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=0,
    name: str = "rmat",
) -> CSRGraph:
    """Graph500-style R-MAT generator (``2**scale`` vertices).

    Quadrant probabilities ``(a, b, c, 1-a-b-c)`` default to the Graph500
    values; edges are sampled bit-by-bit, fully vectorised.
    """
    check_positive("scale", scale)
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    rng = rng_from_seed(seed)
    n = 1 << scale
    m = edge_factor * n
    # The bit-major loop consumes one random(m) vector per scale bit, so
    # edge-chunking would change RNG order; endpoints stay O(m) eager and
    # only the sort/dedupe/CSR assembly streams through the builder.
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(m)
        u_bit = r >= a + b
        v_bit = (r >= a) & (r < a + b) | (r >= a + b + c)
        u = (u << 1) | u_bit
        v = (v << 1) | v_bit
    builder = StreamingCSRBuilder(n)
    for i0 in range(0, m, builder.block_edges):
        i1 = min(m, i0 + builder.block_edges)
        builder.add_edges(u[i0:i1], v[i0:i1])
    return builder.finalize(name=name)


def chain(n: int, name: str = "chain") -> CSRGraph:
    """Path graph ``0-1-...-n-1`` (the paper's worst case for layered BFS)."""
    check_positive("n", n)
    i = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(n, np.stack([i, i + 1], axis=1), name=name)


def star(n: int, name: str = "star") -> CSRGraph:
    """Star graph: vertex 0 connected to all others."""
    check_positive("n", n)
    spokes = np.arange(1, n, dtype=np.int64)
    edges = np.stack([np.zeros(n - 1, dtype=np.int64), spokes], axis=1)
    return CSRGraph.from_edges(n, edges, name=name)


def complete(n: int, name: str = "complete") -> CSRGraph:
    """Complete graph K_n (small n only; used in colouring tests)."""
    check_positive("n", n)
    iu, iv = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.stack([iu, iv], axis=1), name=name)


def random_regular_ish(n: int, degree: int, seed=0, name: str = "regular") -> CSRGraph:
    """Approximately *degree*-regular random graph via permutation matchings.

    Used by ablation benches that need uniform work per vertex; exact
    regularity is not guaranteed (collisions are dropped).
    """
    check_positive("n", n)
    check_positive("degree", degree)
    rng = rng_from_seed(seed)
    builder = StreamingCSRBuilder(n)
    for _ in range((degree + 1) // 2):
        perm = rng.permutation(n).astype(np.int64)
        builder.add_edges(np.arange(n, dtype=np.int64), perm)
    return builder.finalize(name=name)
