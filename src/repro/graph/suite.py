"""The seven-graph evaluation suite (scaled analogs of the paper's Table I).

The paper's graphs (UF Sparse Matrix Collection / Parasol) are not
redistributable offline, so each entry here is a deterministic
:func:`repro.graph.generators.tube_mesh` instance whose *shape* matches the
original: BFS level count (via section size — these FEM matrices are
extruded structures, and ``pwtk``'s 267 levels make it the paper's
outlier), greedy colour count (via intra-section clique size), average
degree (via cross-section coupling) and max-degree character (hubs).
Sizes are scaled ≈1/8 — large enough that BFS level *widths* keep their
relative order across graphs (they set the per-level parallelism in
Fig. 4) while keeping the pure-Python simulation laptop-fast; the
simulated cache is scaled by :func:`suite_scale` to preserve
working-set/cache ratios.  DESIGN.md §5 discusses the effect on reported
speedups.

Parameters below were fitted numerically against the scaled targets; the
realised properties are asserted (with tolerances) in
``tests/graph/test_suite.py`` and reported in EXPERIMENTS.md.

Paper Table I for reference::

    name      |V|    |E|     Δ    #Color  #Level
    auto      448K   3.3M    37   13      58
    bmw3_2    227K   5.5M    335  48      86
    hood      220K   4.8M    76   40      116
    inline_1  503K   18.1M   842  51      183
    ldoor     952K   20.7M   76   42      169
    msdoor    415K   9.3M    76   42      99
    pwtk      217K   5.6M    179  48      267
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graph.csr import CSRGraph
from repro.graph.generators import tube_mesh

__all__ = ["SuiteSpec", "SUITE", "PAPER_TABLE1", "suite_graph", "suite_graphs",
           "suite_scale"]


@dataclass(frozen=True)
class SuiteSpec:
    """Generator parameters for one suite graph (see :func:`tube_mesh`)."""

    name: str
    n: int
    section: int
    clique: int
    cliques_per_vertex: float
    coupling: int
    hubs: int = 0
    hub_degree: int = 0
    seed: int = 7


#: Paper Table I rows: |V|, |E|, Δ, #Color, #Level (for EXPERIMENTS.md).
PAPER_TABLE1 = {
    "auto":     (448_000, 3_300_000, 37, 13, 58),
    "bmw3_2":   (227_000, 5_500_000, 335, 48, 86),
    "hood":     (220_000, 4_800_000, 76, 40, 116),
    "inline_1": (503_000, 18_100_000, 842, 51, 183),
    "ldoor":    (952_000, 20_700_000, 76, 42, 169),
    "msdoor":   (415_000, 9_300_000, 76, 42, 99),
    "pwtk":     (217_000, 5_600_000, 179, 48, 267),
}

#: Scaled generator parameters (numerically fitted; see module docstring).
SUITE = {
    "auto": SuiteSpec("auto", n=56_000, section=510, clique=10,
                      cliques_per_vertex=1.0, coupling=3,
                      hubs=8, hub_degree=30),
    "bmw3_2": SuiteSpec("bmw3_2", n=28_400, section=151, clique=46,
                        cliques_per_vertex=1.0, coupling=5,
                        hubs=12, hub_degree=160),
    "hood": SuiteSpec("hood", n=27_500, section=114, clique=35,
                      cliques_per_vertex=1.0, coupling=9,
                      hubs=8, hub_degree=70),
    "inline_1": SuiteSpec("inline_1", n=62_900, section=168, clique=45,
                          cliques_per_vertex=1.4, coupling=14,
                          hubs=16, hub_degree=400),
    "ldoor": SuiteSpec("ldoor", n=119_000, section=356, clique=40,
                       cliques_per_vertex=1.0, coupling=6,
                       hubs=8, hub_degree=70),
    "msdoor": SuiteSpec("msdoor", n=51_900, section=252, clique=40,
                        cliques_per_vertex=1.0, coupling=6,
                        hubs=8, hub_degree=70),
    "pwtk": SuiteSpec("pwtk", n=27_125, section=51, clique=46,
                      cliques_per_vertex=1.0, coupling=9,
                      hubs=3, hub_degree=170),
}

#: Linear scale of each suite graph relative to the paper's original
#: (used to scale the simulated cache capacity so working-set/cache ratios
#: match the real machine; see ``repro.machine.cache``).
def suite_scale(name: str) -> float:
    """|V|_ours / |V|_paper for the named suite graph."""
    return SUITE[name].n / PAPER_TABLE1[name][0]


@lru_cache(maxsize=None)
def suite_graph(name: str) -> CSRGraph:
    """Build (and memoise) the named suite graph.

    When ``REPRO_GRAPH_DIR`` is set the graph resolves through the
    :mod:`repro.graphstore` registry (``suite:<name>``): built once on
    disk, then memory-mapped — campaign worker forks and repeat
    processes skip generation entirely.  The registry build uses the
    identical :class:`SuiteSpec` parameters, so both paths return
    structurally identical graphs.  Tests that toggle the env var must
    ``suite_graph.cache_clear()`` (the memo is keyed on *name* only).
    """
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}; pick from {sorted(SUITE)}")
    from repro.graphstore.registry import registry_from_env
    registry = registry_from_env()
    if registry is not None:
        return registry.get(f"suite:{name}")
    s = SUITE[name]
    return tube_mesh(s.n, s.section, s.clique, s.cliques_per_vertex, s.coupling,
                     hubs=s.hubs, hub_degree=s.hub_degree, seed=s.seed,
                     name=s.name)


def suite_graphs() -> dict[str, CSRGraph]:
    """All seven suite graphs, keyed by name (Table I order)."""
    return {name: suite_graph(name) for name in SUITE}
