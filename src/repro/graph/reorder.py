"""Vertex reordering.

The paper's §V-B shuffles vertex IDs randomly "which break[s] all the
locality that naturally appears in the graphs" to stress the memory
subsystem (Figure 2).  Orderings here return a permutation array ``perm``
with the convention of :meth:`CSRGraph.permute`: the new ID of old vertex
``v`` is ``perm[v]``.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_from_seed
from repro.graph.csr import CSRGraph

__all__ = [
    "natural_order",
    "random_order",
    "rcm_order",
    "degree_order",
    "apply_ordering",
    "ORDERINGS",
]


def natural_order(graph: CSRGraph, seed=None) -> np.ndarray:
    """Identity permutation — the matrices' native (banded) ordering."""
    return np.arange(graph.n_vertices, dtype=np.int64)


def random_order(graph: CSRGraph, seed=0) -> np.ndarray:
    """Uniformly random relabeling (the paper's locality-destroying shuffle)."""
    rng = rng_from_seed(seed)
    return rng.permutation(graph.n_vertices).astype(np.int64)


def rcm_order(graph: CSRGraph, seed=None) -> np.ndarray:
    """Reverse Cuthill–McKee bandwidth-reducing ordering (via scipy)."""
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    order = reverse_cuthill_mckee(graph.to_scipy(), symmetric_mode=True)
    perm = np.empty(graph.n_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.n_vertices, dtype=np.int64)
    return perm


def degree_order(graph: CSRGraph, seed=None) -> np.ndarray:
    """Decreasing-degree relabeling (classic greedy-colouring heuristic)."""
    order = np.argsort(-graph.degrees, kind="stable")
    perm = np.empty(graph.n_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.n_vertices, dtype=np.int64)
    return perm


ORDERINGS = {
    "natural": natural_order,
    "random": random_order,
    "rcm": rcm_order,
    "degree": degree_order,
}


def apply_ordering(graph: CSRGraph, ordering: str, seed=0) -> CSRGraph:
    """Return *graph* relabelled by the named ordering.

    ``natural`` is a no-op returning the same object (cheap and preserves
    caching keyed on identity).
    """
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; pick from {sorted(ORDERINGS)}")
    if ordering == "natural":
        return graph
    perm = ORDERINGS[ordering](graph, seed=seed)
    return graph.permute(perm, name=f"{graph.name}-{ordering}")
