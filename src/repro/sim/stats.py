"""Execution statistics collected during a simulated parallel loop."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChunkExec", "LoopStats"]


@dataclass(frozen=True)
class ChunkExec:
    """One executed chunk: items ``[lo, hi)`` ran on *thread* over
    ``[start, end)`` simulated cycles."""

    lo: int
    hi: int
    thread: int
    start: float
    end: float

    @property
    def size(self) -> int:
        """Items in the chunk."""
        return self.hi - self.lo

    @property
    def duration(self) -> float:
        """Simulated cycles the chunk occupied its thread."""
        return self.end - self.start


@dataclass
class LoopStats:
    """Aggregate accounting for one simulated ``parallel_for``."""

    span: float = 0.0                 # elapsed cycles, fork to join
    busy_cycles: float = 0.0          # sum of chunk durations over threads
    sched_cycles: float = 0.0         # chunk fetch / task bookkeeping
    atomic_operations: int = 0
    atomic_wait_cycles: float = 0.0
    steals: int = 0
    failed_steals: int = 0
    tasks_spawned: int = 0
    tls_inits: int = 0
    tls_cycles: float = 0.0           # thread-local scratch init time
    hang_cycles: float = 0.0          # SMT-context freeze time (fault layer)
    killed_threads: list[int] = field(default_factory=list)
    hangs: list[tuple] = field(default_factory=list)  # (thread, start, end)
    chunks: list[ChunkExec] = field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        """Chunks executed during the loop."""
        return len(self.chunks)

    def utilization(self, n_threads: int) -> float:
        """Busy fraction of the thread-cycle budget (0 when span is 0)."""
        if self.span <= 0 or n_threads <= 0:
            return 0.0
        return self.busy_cycles / (self.span * n_threads)
