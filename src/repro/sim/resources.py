"""Time-reservation resources: atomics, locks and the memory channel.

These model FIFO-serialised hardware resources without engine-level
blocking: a requester at simulated time ``now`` reserves the next free
service slot and learns its completion time immediately.  Because the
event engine delivers requests in non-decreasing time order, greedy
reservation is equivalent to FIFO queueing — at a fraction of the event
count.

This is how the simulation prices the phenomena the paper discusses:
atomic fetch-and-add contention on shared queue/loop counters (§IV-A,
§IV-C), per-vertex lock costs in the SNAP BFS (§IV-C), and DRAM bandwidth
saturation (§V-B).

Telemetry (:mod:`repro.obs`): every resource takes a ``label`` and, when
a tracer is active at construction time, records each reservation as a
span on its own resource track (service interval, with the queue wait in
the span args).  With no tracer installed the per-operation cost is a
single ``is not None`` test.
"""

from __future__ import annotations

from repro.check import checker as _check
from repro.obs import tracer as _obs_tracer
from repro.obs.tracer import PID_RESOURCES

__all__ = ["AtomicVar", "TicketLock", "MemoryChannel"]


class AtomicVar:
    """A shared variable updated with atomic read-modify-write operations.

    On a ring-based chip every RMW on the same cache line serialises: the
    line bounces between cores.  Each operation therefore occupies the
    variable for ``latency`` cycles, FIFO.
    """

    def __init__(self, latency: float, label: str = "atomic"):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency
        self.label = label
        self._next_free = 0.0
        self.operations = 0
        self.wait_cycles = 0.0
        self._trace = _obs_tracer.active()
        self._check = _check.active()

    def rmw(self, now: float, tid: int | None = None) -> float:
        """Perform one RMW issued at *now*; returns its completion time.

        ``tid`` identifies the issuing simulated thread for the
        concurrency checker (acquire/release edge through the variable);
        it does not affect timing.
        """
        start = max(now, self._next_free)
        self.wait_cycles += start - now
        done = start + self.latency
        self._next_free = done
        self.operations += 1
        if self._trace is not None:
            self._trace.span("rmw", PID_RESOURCES, self.label, start, done,
                             wait=start - now)
        if self._check is not None:
            self._check.on_rmw(self, tid)
        return done


class TicketLock:
    """A lock with FIFO handoff; ``acquire`` covers a critical section.

    The caller supplies the critical-section length (*hold* cycles); the
    lock is occupied for ``latency + hold``.
    """

    def __init__(self, latency: float, label: str = "lock"):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency
        self.label = label
        self._next_free = 0.0
        self.acquisitions = 0
        self.wait_cycles = 0.0
        self._trace = _obs_tracer.active()
        self._check = _check.active()

    def acquire(self, now: float, hold: float = 0.0,
                tid: int | None = None) -> float:
        """Acquire at *now*, hold for *hold* cycles; returns release time.

        ``tid`` identifies the acquiring simulated thread for the
        concurrency checker (lockset membership and lock-order tracking);
        it does not affect timing.
        """
        if hold < 0:
            raise ValueError(f"hold must be >= 0, got {hold}")
        start = max(now, self._next_free)
        self.wait_cycles += start - now
        done = start + self.latency + hold
        self._next_free = done
        self.acquisitions += 1
        if self._trace is not None:
            self._trace.span("lock", PID_RESOURCES, self.label, start, done,
                             wait=start - now)
        if self._check is not None:
            self._check.on_lock(self, tid, start, done)
        return done


class MemoryChannel:
    """DRAM bandwidth model: *banks* parallel servers.

    A transfer of ``volume`` lines occupies the least-loaded bank for
    ``volume * cycles_per_line`` cycles.  While total demand stays under
    the aggregate bandwidth no queueing occurs (the paper observed the KNF
    memory subsystem "scales well" — coloring stayed linear to 121
    threads); an ablation bench shrinks the bank count to show what
    saturation would have looked like.

    ``busy_cycles`` accumulates total bank-service time, from which the
    metrics layer derives the channel's saturation fraction for a loop
    (``busy_cycles / (span * n_banks)``).
    """

    def __init__(self, banks: int, cycles_per_line: float,
                 label: str = "dram"):
        if banks < 1:
            raise ValueError(f"banks must be >= 1, got {banks}")
        if cycles_per_line < 0:
            raise ValueError(f"cycles_per_line must be >= 0, got {cycles_per_line}")
        self._banks = [0.0] * banks
        self.cycles_per_line = cycles_per_line
        self.label = label
        self.transfers = 0
        self.lines = 0.0
        self.wait_cycles = 0.0
        self.busy_cycles = 0.0
        self._trace = _obs_tracer.active()

    @property
    def n_banks(self) -> int:
        """Number of parallel servers (DRAM banks/channels)."""
        return len(self._banks)

    def service(self, now: float, volume: float, scale: float = 1.0) -> float:
        """Transfer *volume* lines starting at *now*; returns finish time.

        Zero-volume requests complete immediately and reserve nothing.
        ``scale`` multiplies the occupancy (but not the ``lines``
        accounting) — the fault layer uses it for memory-channel latency
        jitter on a degraded channel.
        """
        if volume < 0:
            raise ValueError(f"volume must be >= 0, got {volume}")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        if volume == 0:
            return now
        i = min(range(len(self._banks)), key=self._banks.__getitem__)
        start = max(now, self._banks[i])
        self.wait_cycles += start - now
        done = start + volume * self.cycles_per_line * scale
        self._banks[i] = done
        self.transfers += 1
        self.lines += volume
        self.busy_cycles += done - start
        if self._trace is not None:
            # One track per bank: service intervals on a bank are disjoint,
            # so the B/E spans nest trivially.
            self._trace.span("xfer", PID_RESOURCES, f"{self.label}-bank{i}",
                             start, done, lines=volume, wait=start - now)
        return done
