"""Deterministic discrete-event simulation core."""

from repro.sim.engine import (Engine, Barrier, Condition, Process,
                              SimulationError, SimulationTimeout,
                              DeadlockError, ThreadKilled)
from repro.sim.faults import FaultKind, FaultSpec, FaultPlan, FaultInjector
from repro.sim.resources import AtomicVar, TicketLock, MemoryChannel
from repro.sim.stats import ChunkExec, LoopStats
from repro.sim.trace import gantt, thread_utilization, breakdown

__all__ = [
    "Engine",
    "Barrier",
    "Condition",
    "Process",
    "SimulationError",
    "SimulationTimeout",
    "DeadlockError",
    "ThreadKilled",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "AtomicVar",
    "TicketLock",
    "MemoryChannel",
    "ChunkExec",
    "LoopStats",
    "gantt",
    "thread_utilization",
    "breakdown",
]
