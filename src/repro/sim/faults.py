"""Seeded, deterministic fault injection for the simulated machine.

The paper studies a *pre-release prototype* (Knights Ferry) — exactly the
setting where stragglers, clock throttling and flaky memory differentiate
scheduling policies.  This module lets an experiment degrade the simulated
chip on purpose and compare how the OpenMP / Cilk / TBB runtime models
absorb the damage.

A :class:`FaultPlan` is a declarative, immutable list of
:class:`FaultSpec` entries.  All randomness (random plan generation,
per-chunk transient-stall draws) derives from the plan seed through
counter-keyed :func:`numpy.random.default_rng` streams, so identical
``(seed, FaultPlan)`` inputs produce **bit-identical** fault schedules and
simulated cycle counts — a property the tests assert.

Fault kinds
-----------

* ``CORE_THROTTLE`` — a core's effective issue rate is divided by
  ``magnitude`` over ``[start, start + duration)`` (clock throttling).
* ``TRANSIENT_STALL`` — chunks starting on the core inside the window pay
  an extra exponentially-distributed stall of mean ``magnitude`` cycles
  (flaky memory / ECC retries).
* ``SMT_HANG`` — the SMT context running software thread ``target``
  freezes until the window ends (stuck hardware context).
* ``MEM_JITTER`` — chip-wide memory-channel occupancy is multiplied by
  ``magnitude`` over the window (degraded DRAM channel).
* ``THREAD_KILL`` — software thread ``target`` dies at ``start``: it
  stops at its next scheduling point (chunk fetch or barrier arrival) and
  the region barrier drops a party so survivors complete.  Work the dead
  thread had *not yet fetched* is redistributed by dynamic/guided
  scheduling and work stealing, but statically-dealt chunks are lost —
  which is why post-run kernel validation matters.

Times are *kernel-global* simulated cycles: the injector keeps a clock
offset across the many ``parallel_for`` regions a kernel executes (each
region runs its own :class:`~repro.sim.engine.Engine` starting at 0), so
"a throttle from cycle 1e6 to 2e6" means cycles of the whole kernel run.

Kill events are interleaved deterministically through the engine's
seq-ordered heap (they are scheduled like any other event); window faults
(throttle/stall/hang/jitter) are pure functions of the plan and the query
time, which is equivalent and cheaper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Barrier, Engine, ThreadKilled

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector",
           "ThreadKilled"]


class FaultKind(enum.Enum):
    """The degradation modes the injector can apply."""

    CORE_THROTTLE = "core_throttle"
    TRANSIENT_STALL = "transient_stall"
    SMT_HANG = "smt_hang"
    MEM_JITTER = "mem_jitter"
    THREAD_KILL = "thread_kill"


#: Kinds that degrade timing without destroying work — safe for intensity
#: sweeps whose post-run validation must pass.
DEGRADING_KINDS = (FaultKind.CORE_THROTTLE, FaultKind.TRANSIENT_STALL,
                   FaultKind.SMT_HANG, FaultKind.MEM_JITTER)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* on *target* over ``[start, start + duration)``.

    ``target`` is a core index (``CORE_THROTTLE`` / ``TRANSIENT_STALL``),
    a software-thread id (``SMT_HANG`` / ``THREAD_KILL``), and ignored for
    the chip-wide ``MEM_JITTER``.  ``magnitude`` is a slowdown factor
    (throttle/jitter, > 1), a mean stall in cycles (transient stall), and
    unused for hang/kill.
    """

    kind: FaultKind
    target: int = 0
    start: float = 0.0
    duration: float = float("inf")
    magnitude: float = 1.0

    def __post_init__(self):
        if not isinstance(self.kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind in (FaultKind.CORE_THROTTLE, FaultKind.MEM_JITTER) \
                and self.magnitude < 1.0:
            raise ValueError(
                f"{self.kind.value} magnitude is a slowdown factor and must "
                f"be >= 1, got {self.magnitude}")
        if self.kind is FaultKind.TRANSIENT_STALL and self.magnitude < 0:
            raise ValueError(
                f"transient stall magnitude must be >= 0, got {self.magnitude}")

    @property
    def end(self) -> float:
        """Exclusive end of the fault window."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the window covers kernel-global time *t*."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded fault scenario.

    ``seed`` drives every stochastic draw the plan implies (transient
    stall magnitudes); ``specs`` is the ordered fault list.  The empty
    plan is the healthy machine.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise TypeError(f"specs must be FaultSpec, got {s!r}")

    @property
    def healthy(self) -> bool:
        """True for the empty (no-fault) plan."""
        return not self.specs

    def schedule(self) -> tuple[tuple[float, str, int, float, float], ...]:
        """The resolved fault schedule, sorted by start time.

        A pure function of the plan: ``(start, kind, target, duration,
        magnitude)`` rows, bit-identical across runs — the determinism
        contract the tests assert.
        """
        rows = [(s.start, s.kind.value, s.target, s.duration, s.magnitude)
                for s in self.specs]
        return tuple(sorted(rows))

    @classmethod
    def random(cls, seed: int, *, n_cores: int, n_threads: int,
               intensity: float, horizon: float,
               kinds: tuple[FaultKind, ...] = DEGRADING_KINDS) -> "FaultPlan":
        """A deterministic random scenario scaled by ``intensity`` (0..1).

        ``intensity`` scales both the number of faults (up to roughly one
        per core at 1.0) and their severity; ``horizon`` is the expected
        kernel length in cycles, inside which the fault windows fall.
        Only *kinds* are drawn (kills excluded by default so validation
        sweeps stay lossless).
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if not kinds:
            raise ValueError("kinds must not be empty")
        rng = np.random.default_rng(np.random.SeedSequence((seed, 0xFA)))
        n_faults = int(round(intensity * max(n_cores, 1)))
        specs = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            start = float(rng.uniform(0.0, 0.8 * horizon))
            duration = float(rng.uniform(0.1, 0.5) * horizon)
            if kind is FaultKind.CORE_THROTTLE:
                specs.append(FaultSpec(kind, int(rng.integers(n_cores)),
                                       start, duration,
                                       1.0 + 3.0 * intensity * rng.random()))
            elif kind is FaultKind.TRANSIENT_STALL:
                specs.append(FaultSpec(kind, int(rng.integers(n_cores)),
                                       start, duration,
                                       400.0 * intensity * rng.random()))
            elif kind is FaultKind.SMT_HANG:
                specs.append(FaultSpec(kind, int(rng.integers(n_threads)),
                                       start,
                                       float(rng.uniform(0.02, 0.1) * horizon)))
            elif kind is FaultKind.MEM_JITTER:
                specs.append(FaultSpec(kind, 0, start, duration,
                                       1.0 + 2.0 * intensity * rng.random()))
            elif kind is FaultKind.THREAD_KILL:
                specs.append(FaultSpec(kind, int(rng.integers(n_threads)),
                                       start, 0.0))
        return cls(seed=seed, specs=tuple(specs))


class FaultInjector:
    """Applies a :class:`FaultPlan` to one kernel execution.

    One injector serves the *whole* kernel: pass the same instance to
    every ``parallel_for`` the kernel issues and it advances its
    kernel-global clock across regions (the runtimes call
    :meth:`begin_loop` / :meth:`end_loop` through
    :class:`~repro.runtime.base.LoopContext`).  Injectors are stateful
    and single-use — build a fresh one per kernel run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.clock = 0.0          # kernel-global cycles before current region
        self.kills_fired = 0
        self.kills_delivered = 0
        self._throttles = [s for s in plan.specs
                           if s.kind is FaultKind.CORE_THROTTLE]
        self._stalls = [s for s in plan.specs
                        if s.kind is FaultKind.TRANSIENT_STALL]
        self._hangs = [s for s in plan.specs if s.kind is FaultKind.SMT_HANG]
        self._jitters = [s for s in plan.specs
                         if s.kind is FaultKind.MEM_JITTER]
        self._kills = sorted((s for s in plan.specs
                              if s.kind is FaultKind.THREAD_KILL),
                             key=lambda s: (s.start, s.target))
        self._stall_draws: dict[int, int] = {}   # spec index -> draw counter
        self._killed: set[int] = set()           # threads flagged dead
        # Per-region state (reset by begin_loop):
        self._engine: Engine | None = None
        self._barrier: Barrier | None = None
        self._procs: dict[int, object] = {}
        self._loop_kills: list[int] = []

    # ----- region lifecycle -------------------------------------------------

    def begin_loop(self, engine: Engine, barrier: Barrier,
                   procs: dict[int, object]) -> None:
        """Arm the injector for one parallel region.

        ``procs`` maps software-thread id to the region's
        :class:`~repro.sim.engine.Process` (used to decide whether a kill
        victim already parked at the barrier).  Pending kill events are
        scheduled onto the region engine's seq-ordered heap so they
        interleave deterministically with the workers.
        """
        self._engine = engine
        self._barrier = barrier
        self._procs = procs
        self._loop_kills = []
        # Threads killed in an earlier region stay dead: they die at their
        # first scheduling point of this region, so release their barrier
        # slot up front.
        for tid in procs:
            if tid in self._killed:
                barrier.drop_party()
        for spec in self._kills:
            if spec.target in self._killed or spec.target not in procs:
                continue
            delay = max(0.0, spec.start - self.clock)
            engine.schedule(delay, self._fire_kill, spec.target)

    def end_loop(self, span: float) -> None:
        """Advance the kernel-global clock past a finished region."""
        self.clock += max(0.0, span)
        self._engine = None
        self._barrier = None
        self._procs = {}

    def _fire_kill(self, thread: int) -> None:
        """Engine event: flag *thread* dead and release its barrier slot.

        A victim already waiting at the join barrier survives the region
        (its work is done); anyone else is flagged and dies at its next
        scheduling point via :meth:`check_kill`.
        """
        if thread in self._killed:
            return
        proc = self._procs.get(thread)
        if proc is None or proc.finished or proc.waiting_on is self._barrier:
            return
        self._killed.add(thread)
        self._loop_kills.append(thread)
        self.kills_fired += 1
        if self._barrier is not None:
            self._barrier.drop_party()

    @property
    def loop_kills(self) -> list[int]:
        """Threads killed during the current/most recent region."""
        return list(self._loop_kills)

    # ----- queries (wired into Chip / LoopContext) --------------------------

    def _gnow(self, now: float) -> float:
        return self.clock + now

    def check_kill(self, thread: int, now: float) -> None:
        """Raise :class:`ThreadKilled` if *thread* has been flagged dead.

        Called by the runtimes at every scheduling point (chunk fetch,
        barrier arrival), which is where a dying thread stops.
        """
        if thread in self._killed:
            self.kills_delivered += 1
            raise ThreadKilled(thread, self._gnow(now))

    def compute_factor(self, core: int, now: float) -> float:
        """Issue-rate slowdown factor for *core* (product of throttles)."""
        t = self._gnow(now)
        factor = 1.0
        for s in self._throttles:
            if s.target == core and s.active(t):
                factor *= s.magnitude
        return factor

    def transient_stall(self, core: int, now: float) -> float:
        """Extra stall cycles for a chunk starting on *core* now.

        Each active stall spec contributes an exponential draw of mean
        ``magnitude``, keyed by ``(plan seed, spec index, core, counter)``
        — deterministic because the engine delivers chunk starts in a
        deterministic order.
        """
        t = self._gnow(now)
        extra = 0.0
        for i, s in enumerate(self._stalls):
            if s.target == core and s.active(t):
                n = self._stall_draws.get(i, 0)
                self._stall_draws[i] = n + 1
                rng = np.random.default_rng(
                    np.random.SeedSequence((self.plan.seed, i, core, n)))
                extra += float(rng.exponential(s.magnitude))
        return extra

    def hang_delay(self, thread: int, now: float) -> float:
        """Cycles until *thread*'s SMT context unfreezes (0 if not hung)."""
        t = self._gnow(now)
        delay = 0.0
        for s in self._hangs:
            if s.target == thread and s.active(t):
                delay = max(delay, s.end - t)
        return delay

    def channel_factor(self, now: float) -> float:
        """Chip-wide memory-channel occupancy multiplier."""
        t = self._gnow(now)
        factor = 1.0
        for s in self._jitters:
            if s.active(t):
                factor *= s.magnitude
        return factor
