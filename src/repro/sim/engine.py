"""A small deterministic discrete-event engine.

Simulated threads are Python generators that ``yield`` requests:

* a non-negative number — advance simulated time by that many cycles,
* a :class:`Barrier` — block until all parties arrive,
* a :class:`Condition` — block until :meth:`Condition.fire` is called.

The engine is deterministic: ties in time are broken by scheduling order
(a monotonically increasing sequence number), so identical inputs always
produce identical schedules — a property the tests assert and the
experiment harness relies on for reproducibility.

Time is measured in clock cycles (floats).  Resources with queueing
semantics (atomics, memory channels) live in :mod:`repro.sim.resources`
and use time-reservation rather than engine-level blocking, which keeps
the event count per simulated kernel proportional to the number of
*chunks*, not the number of memory operations.

Hardening (used by the fault-injection layer, :mod:`repro.sim.faults`):

* a watchdog with event-count (``max_events``) and simulated-time
  (``max_time``) budgets raising :class:`SimulationTimeout`;
* deadlock detection that names which processes are blocked on which
  primitive (:class:`DeadlockError`), including when ``run(until=...)``
  drains the heap early;
* :class:`ThreadKilled` — raised inside a process generator to model a
  simulated thread dying mid-kernel; the engine retires the process
  instead of crashing the simulation.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Generator

from repro.check import checker as _check
from repro.obs import tracer as _obs_tracer
from repro.obs.tracer import PID_ENGINE, PID_THREADS

__all__ = ["Engine", "Barrier", "Condition", "Process",
           "SimulationError", "SimulationTimeout", "DeadlockError",
           "ThreadKilled"]


class SimulationError(RuntimeError):
    """Base class for structured simulation failures."""


class SimulationTimeout(SimulationError):
    """The watchdog budget (events or simulated time) was exhausted.

    Attributes name the exceeded budget and carry the engine state at the
    moment of the timeout, plus any blocked processes — the most common
    cause of a runaway simulation is a livelock that keeps generating
    events without finishing.
    """

    def __init__(self, message: str, *, kind: str, now: float,
                 events: int, blocked: list[str]):
        super().__init__(message)
        self.kind = kind          # "events" or "time"
        self.now = now
        self.events = events
        self.blocked = blocked


class DeadlockError(SimulationError):
    """No pending events but processes remain blocked.

    ``blocked`` lists human-readable descriptions (process name + the
    primitive it waits on) so a hung runtime names its stuck threads
    instead of failing with an opaque count.
    """

    def __init__(self, message: str, *, blocked: list[str]):
        super().__init__(message)
        self.blocked = blocked


class ThreadKilled(Exception):
    """A simulated thread was killed mid-kernel (fault injection).

    Raised *inside* a process generator (see
    :meth:`repro.sim.faults.FaultInjector`); the engine catches it and
    retires the process without treating it as an error.
    """

    def __init__(self, thread: int, at: float):
        super().__init__(f"thread {thread} killed at t={at:.1f}")
        self.thread = thread
        self.at = at


class Engine:
    """Event loop: a heap of ``(time, seq, callback)`` entries.

    ``max_events`` / ``max_time`` arm the watchdog: exceeding either
    budget raises :class:`SimulationTimeout` instead of looping forever.
    """

    def __init__(self, max_events: int | None = None,
                 max_time: float | None = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        if max_time is not None and max_time < 0:
            raise ValueError(f"max_time must be >= 0, got {max_time}")
        self._now = 0.0
        self._heap: list = []
        self._seq = count()
        self._active = 0  # processes not yet finished
        self._processes: list[Process] = []
        self.max_events = max_events
        self.max_time = max_time
        self.events_processed = 0
        # Telemetry (repro.obs) and concurrency checking (repro.check):
        # captured once here, null-checked per use.
        self.trace = _obs_tracer.active()
        self.check = _check.active()

    @property
    def now(self) -> float:
        """Current simulated time (cycles)."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` after *delay* cycles."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), fn, args))

    def spawn(self, gen: Generator, name: str | None = None,
              tid: int | None = None) -> "Process":
        """Register a generator as a simulated process, starting now.

        ``tid`` is the simulated software-thread id — used by the tracer
        to place the process' events on its thread track.
        """
        return Process(self, gen, name=name, tid=tid)

    def blocked_processes(self) -> list[str]:
        """Descriptions of every live process blocked on a primitive."""
        out = []
        for p in self._processes:
            if not p.finished:
                target = repr(p.waiting_on) if p.waiting_on is not None \
                    else "<runnable or sleeping>"
                out.append(f"{p.name} waiting on {target}")
        return out

    def _timeout(self, kind: str, budget) -> SimulationTimeout:
        blocked = self.blocked_processes()
        detail = ("; blocked: " + ", ".join(blocked)) if blocked else ""
        if self.trace is not None:
            self.trace.instant("watchdog-timeout", PID_ENGINE, 0, self._now,
                               kind=kind, blocked=list(blocked))
        return SimulationTimeout(
            f"simulation exceeded its {kind} budget ({budget}) at "
            f"t={self._now:.1f} after {self.events_processed} events{detail}",
            kind=kind, now=self._now, events=self.events_processed,
            blocked=blocked)

    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or *until* is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if the heap drains — even before *until* — while processes are
        still blocked, and :class:`SimulationTimeout` if a watchdog
        budget is exceeded.
        """
        while self._heap:
            t, _, fn, args = self._heap[0]
            if until is not None and t > until:
                # Stopped early with work still pending: not a deadlock.
                return self._now
            if self.max_time is not None and t > self.max_time:
                raise self._timeout("time", self.max_time)
            heapq.heappop(self._heap)
            self._now = t
            fn(*args)
            self.events_processed += 1
            if self.max_events is not None \
                    and self.events_processed > self.max_events:
                raise self._timeout("events", self.max_events)
        if self._active:
            blocked = self.blocked_processes()
            lines = "\n  ".join(blocked) if blocked else "(unnamed)"
            if self.trace is not None:
                self.trace.instant("deadlock", PID_ENGINE, 0, self._now,
                                   blocked=list(blocked))
            raise DeadlockError(
                f"deadlock: {self._active} process(es) blocked with no "
                f"pending events at t={self._now:.1f}:\n  {lines}",
                blocked=blocked)
        return self._now


class Process:
    """A generator-backed simulated thread (see module docstring)."""

    def __init__(self, engine: Engine, gen: Generator, name: str | None = None,
                 tid: int | None = None):
        self.engine = engine
        self.gen = gen
        self.name = name if name is not None else f"proc-{len(engine._processes)}"
        self.tid = tid  # simulated software-thread id (tracer track), or None
        self.finished = False
        self.killed = False
        self.waiting_on = None  # Barrier/Condition currently blocking us
        engine._active += 1
        engine._processes.append(self)
        engine.schedule(0.0, self._step)

    def _retire(self, killed: bool = False) -> None:
        self.finished = True
        self.killed = killed
        self.waiting_on = None
        self.engine._active -= 1
        trace = self.engine.trace
        if trace is not None and self.tid is not None and killed:
            trace.instant("killed", PID_THREADS, self.tid, self.engine.now)
        if killed and self.engine.check is not None:
            self.engine.check.on_kill(self.tid)

    def _step(self) -> None:
        self.waiting_on = None
        try:
            request = self.gen.send(None)
        except StopIteration:
            self._retire()
            return
        except ThreadKilled:
            self._retire(killed=True)
            return
        if isinstance(request, (int, float)):
            self.engine.schedule(float(request), self._step)
        elif isinstance(request, (Barrier, Condition)):
            request._block(self)
        else:
            raise TypeError(f"process yielded unsupported request {request!r}")


class Barrier:
    """Reusable synchronisation barrier for *parties* processes.

    Release is charged ``cost_fn(parties)`` cycles after the last arrival
    (e.g. a logarithmic ring-hop tree on the simulated chip).

    :meth:`drop_party` removes one expected arrival — the fault layer
    calls it when a participating thread is killed, so the survivors are
    released instead of deadlocking.
    """

    def __init__(self, engine: Engine, parties: int,
                 cost_fn: Callable[[int], float] | None = None):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self.cost_fn = cost_fn or (lambda n: 0.0)
        self._waiting: list[Process] = []
        self.trips = 0

    def __repr__(self) -> str:
        return (f"Barrier(parties={self.parties}, "
                f"arrived={len(self._waiting)}, trips={self.trips})")

    def _block(self, proc: Process) -> None:
        proc.waiting_on = self
        self._waiting.append(proc)
        trace = self.engine.trace
        if trace is not None and proc.tid is not None:
            trace.begin("barrier-wait", PID_THREADS, proc.tid, self.engine.now)
        self._maybe_release()

    def drop_party(self) -> None:
        """One expected participant died; stop waiting for it."""
        if self.parties <= 0:
            raise RuntimeError("drop_party() on a barrier with no parties")
        self.parties -= 1
        self._maybe_release()

    def _maybe_release(self) -> None:
        if self._waiting and len(self._waiting) >= self.parties:
            waiting, self._waiting = self._waiting, []
            self.trips += 1
            release_delay = self.cost_fn(max(1, self.parties))
            trace = self.engine.trace
            for p in waiting:
                if trace is not None and p.tid is not None:
                    trace.end("barrier-wait", PID_THREADS, p.tid,
                              self.engine.now + release_delay)
                self.engine.schedule(release_delay, p._step)
            if self.engine.check is not None:
                tids = [p.tid for p in waiting if p.tid is not None]
                self.engine.check.on_barrier(self, tids, self.engine.now)


class Condition:
    """One-shot wakeup: processes block until :meth:`fire` is called.

    Processes that wait after the condition has fired resume immediately.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.fired = False
        self._waiting: list[Process] = []

    def __repr__(self) -> str:
        return (f"Condition(fired={self.fired}, "
                f"waiters={len(self._waiting)})")

    def _block(self, proc: Process) -> None:
        if self.fired:
            if self.engine.check is not None:
                self.engine.check.on_cond_wake(self, proc.tid)
            self.engine.schedule(0.0, proc._step)
        else:
            proc.waiting_on = self
            self._waiting.append(proc)
            trace = self.engine.trace
            if trace is not None and proc.tid is not None:
                trace.begin("cond-wait", PID_THREADS, proc.tid,
                            self.engine.now)

    def fire(self, tid: int | None = None) -> None:
        """Wake all current and future waiters.

        ``tid`` identifies the firing thread so the checker can mint a
        happens-before edge from the firer to every (current and future)
        waiter; it has no effect on the simulation itself.
        """
        self.fired = True
        waiting, self._waiting = self._waiting, []
        trace = self.engine.trace
        check = self.engine.check
        if check is not None:
            check.on_cond_fire(self, tid)
        for p in waiting:
            if trace is not None and p.tid is not None:
                trace.end("cond-wait", PID_THREADS, p.tid, self.engine.now)
            if check is not None:
                check.on_cond_wake(self, p.tid)
            self.engine.schedule(0.0, p._step)
