"""A small deterministic discrete-event engine.

Simulated threads are Python generators that ``yield`` requests:

* a non-negative number — advance simulated time by that many cycles,
* a :class:`Barrier` — block until all parties arrive,
* a :class:`Condition` — block until :meth:`Condition.fire` is called.

The engine is deterministic: ties in time are broken by scheduling order
(a monotonically increasing sequence number), so identical inputs always
produce identical schedules — a property the tests assert and the
experiment harness relies on for reproducibility.

Time is measured in clock cycles (floats).  Resources with queueing
semantics (atomics, memory channels) live in :mod:`repro.sim.resources`
and use time-reservation rather than engine-level blocking, which keeps
the event count per simulated kernel proportional to the number of
*chunks*, not the number of memory operations.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Generator, Iterable

__all__ = ["Engine", "Barrier", "Condition", "Process"]


class Engine:
    """Event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self):
        self._now = 0.0
        self._heap: list = []
        self._seq = count()
        self._active = 0  # processes not yet finished

    @property
    def now(self) -> float:
        """Current simulated time (cycles)."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` after *delay* cycles."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), fn, args))

    def spawn(self, gen: Generator) -> "Process":
        """Register a generator as a simulated process, starting now."""
        return Process(self, gen)

    def run(self, until: float | None = None) -> float:
        """Process events until the heap is empty (or *until* is reached).

        Returns the final simulated time.
        """
        while self._heap:
            t, _, fn, args = self._heap[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._heap)
            self._now = t
            fn(*args)
        if self._active and until is None:
            raise RuntimeError(
                f"deadlock: {self._active} process(es) blocked with no pending events")
        return self._now


class Process:
    """A generator-backed simulated thread (see module docstring)."""

    def __init__(self, engine: Engine, gen: Generator):
        self.engine = engine
        self.gen = gen
        self.finished = False
        engine._active += 1
        engine.schedule(0.0, self._step)

    def _step(self) -> None:
        try:
            request = self.gen.send(None)
        except StopIteration:
            self.finished = True
            self.engine._active -= 1
            return
        if isinstance(request, (int, float)):
            self.engine.schedule(float(request), self._step)
        elif isinstance(request, (Barrier, Condition)):
            request._block(self)
        else:
            raise TypeError(f"process yielded unsupported request {request!r}")


class Barrier:
    """Reusable synchronisation barrier for *parties* processes.

    Release is charged ``cost_fn(parties)`` cycles after the last arrival
    (e.g. a logarithmic ring-hop tree on the simulated chip).
    """

    def __init__(self, engine: Engine, parties: int,
                 cost_fn: Callable[[int], float] | None = None):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self.cost_fn = cost_fn or (lambda n: 0.0)
        self._waiting: list[Process] = []
        self.trips = 0

    def _block(self, proc: Process) -> None:
        self._waiting.append(proc)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            self.trips += 1
            release_delay = self.cost_fn(self.parties)
            for p in waiting:
                self.engine.schedule(release_delay, p._step)


class Condition:
    """One-shot wakeup: processes block until :meth:`fire` is called.

    Processes that wait after the condition has fired resume immediately.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.fired = False
        self._waiting: list[Process] = []

    def _block(self, proc: Process) -> None:
        if self.fired:
            self.engine.schedule(0.0, proc._step)
        else:
            self._waiting.append(proc)

    def fire(self) -> None:
        """Wake all current and future waiters."""
        self.fired = True
        waiting, self._waiting = self._waiting, []
        for p in waiting:
            self.engine.schedule(0.0, p._step)
