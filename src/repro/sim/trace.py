"""Execution-trace diagnostics: ASCII Gantt charts and breakdowns.

Turns a :class:`~repro.sim.stats.LoopStats` chunk schedule into the kind
of picture you'd want when a sweep surprises you: who ran what when,
per-thread busy fractions, and where the cycles went.
"""

from __future__ import annotations

import numpy as np

from repro.sim.stats import LoopStats

__all__ = ["gantt", "thread_utilization", "breakdown"]


def _effective_span(stats: LoopStats) -> float:
    """The loop span, falling back to the last chunk end when unset.

    Partial schedules (a loop aborted by a fault, or stats inspected
    before ``finish``) have ``span == 0`` but real chunks; diagnostics
    should still work on them.
    """
    if stats.span > 0:
        return stats.span
    if stats.chunks:
        return max(c.end for c in stats.chunks)
    return 0.0


def gantt(stats: LoopStats, width: int = 72, max_threads: int = 32) -> str:
    """ASCII Gantt chart of the chunk schedule.

    One row per thread; ``#`` marks executing time, ``~`` a hung SMT
    context (fault layer freeze window), ``.`` idle.  Threads killed by
    fault injection are marked ``x`` on their row label.  Rows beyond
    *max_threads* are elided with a summary line.
    """
    if not stats.chunks:
        return "(no chunks executed)"
    span = _effective_span(stats)
    killed = set(stats.killed_threads)
    threads = sorted({c.thread for c in stats.chunks}
                     | {h[0] for h in stats.hangs} | killed)
    header = (f"span = {span:.0f} cycles, {len(stats.chunks)} chunks, "
              f"{len(threads)} active threads")
    if stats.hangs or killed:
        header += (f" ({len(stats.hangs)} hangs, "
                   f"{len(killed)} killed)")
    lines = [header]
    scale = width / span

    def paint(row, start, end):
        lo = int(start * scale)
        hi = max(lo + 1, int(np.ceil(end * scale)))
        row[lo:min(hi, width)] = True

    shown = threads[:max_threads]
    for t in shown:
        busy = np.zeros(width, dtype=bool)
        hung = np.zeros(width, dtype=bool)
        for c in stats.chunks:
            if c.thread == t:
                paint(busy, c.start, c.end)
        for thread, start, end in stats.hangs:
            if thread == t:
                paint(hung, start, end)
        hung &= ~busy  # execution wins where a bucket holds both
        bar = "".join("#" if b else ("~" if h else ".")
                      for b, h in zip(busy, hung))
        mark = "x" if t in killed else " "
        lines.append(f"t{t:3d}{mark}|{bar}|")
    if len(threads) > max_threads:
        lines.append(f"... {len(threads) - max_threads} more threads elided")
    return "\n".join(lines)


def thread_utilization(stats: LoopStats) -> dict[int, float]:
    """Busy fraction of the span, per thread that executed anything.

    Falls back to the last chunk end when ``span`` is unset (see
    :func:`gantt`); only a truly empty schedule yields ``{}``.
    """
    span = _effective_span(stats)
    if span <= 0:
        return {}
    busy: dict[int, float] = {}
    for c in stats.chunks:
        busy[c.thread] = busy.get(c.thread, 0.0) + c.duration
    return {t: b / span for t, b in sorted(busy.items())}


def breakdown(stats: LoopStats, n_threads: int) -> str:
    """One-paragraph accounting of where the loop's cycles went."""
    util = stats.utilization(n_threads)
    lines = [
        f"span {stats.span:.0f} cycles, busy {stats.busy_cycles:.0f} "
        f"thread-cycles ({util:.0%} of {n_threads}-thread budget)",
        f"scheduling {stats.sched_cycles:.0f} cycles "
        f"({stats.atomic_operations} atomics waiting "
        f"{stats.atomic_wait_cycles:.0f}, {stats.steals} steals, "
        f"{stats.failed_steals} failed probes, "
        f"{stats.tasks_spawned} tasks)",
    ]
    if stats.tls_inits:
        lines.append(f"{stats.tls_inits} thread-local initialisations")
    if stats.hang_cycles or stats.killed_threads:
        lines.append(
            f"faults: {stats.hang_cycles:.0f} hung cycles over "
            f"{len(stats.hangs)} windows, "
            f"{len(stats.killed_threads)} threads killed")
    return "\n".join(lines)
