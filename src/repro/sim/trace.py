"""Execution-trace diagnostics: ASCII Gantt charts and breakdowns.

Turns a :class:`~repro.sim.stats.LoopStats` chunk schedule into the kind
of picture you'd want when a sweep surprises you: who ran what when,
per-thread busy fractions, and where the cycles went.
"""

from __future__ import annotations

import numpy as np

from repro.sim.stats import LoopStats

__all__ = ["gantt", "thread_utilization", "breakdown"]


def gantt(stats: LoopStats, width: int = 72, max_threads: int = 32) -> str:
    """ASCII Gantt chart of the chunk schedule.

    One row per thread; ``#`` marks executing time, ``.`` idle.  Rows
    beyond *max_threads* are elided with a summary line.
    """
    if not stats.chunks:
        return "(no chunks executed)"
    span = stats.span if stats.span > 0 else max(c.end for c in stats.chunks)
    threads = sorted({c.thread for c in stats.chunks})
    lines = [f"span = {span:.0f} cycles, {len(stats.chunks)} chunks, "
             f"{len(threads)} active threads"]
    scale = width / span

    shown = threads[:max_threads]
    for t in shown:
        row = np.zeros(width, dtype=bool)
        for c in stats.chunks:
            if c.thread != t:
                continue
            lo = int(c.start * scale)
            hi = max(lo + 1, int(np.ceil(c.end * scale)))
            row[lo:min(hi, width)] = True
        bar = "".join("#" if b else "." for b in row)
        lines.append(f"t{t:3d} |{bar}|")
    if len(threads) > max_threads:
        lines.append(f"... {len(threads) - max_threads} more threads elided")
    return "\n".join(lines)


def thread_utilization(stats: LoopStats) -> dict[int, float]:
    """Busy fraction of the span, per thread that executed anything."""
    if stats.span <= 0:
        return {}
    busy: dict[int, float] = {}
    for c in stats.chunks:
        busy[c.thread] = busy.get(c.thread, 0.0) + c.duration
    return {t: b / stats.span for t, b in sorted(busy.items())}


def breakdown(stats: LoopStats, n_threads: int) -> str:
    """One-paragraph accounting of where the loop's cycles went."""
    util = stats.utilization(n_threads)
    lines = [
        f"span {stats.span:.0f} cycles, busy {stats.busy_cycles:.0f} "
        f"thread-cycles ({util:.0%} of {n_threads}-thread budget)",
        f"scheduling {stats.sched_cycles:.0f} cycles "
        f"({stats.atomic_operations} atomics waiting "
        f"{stats.atomic_wait_cycles:.0f}, {stats.steals} steals, "
        f"{stats.failed_steals} failed probes, "
        f"{stats.tasks_spawned} tasks)",
    ]
    if stats.tls_inits:
        lines.append(f"{stats.tls_inits} thread-local initialisations")
    return "\n".join(lines)
