"""Observer gating, upgraded with the call graph (whole-program rule).

The per-file ``obs-ungated`` rule enforces the "one ``is not None``
comparison when off" telemetry contract inside the simulated core, but
it cannot see a hot-path function delegating to a helper *outside*
``SIM_SCOPE`` that touches an observer handle unguarded — the helper's
module is out of scope, the caller's call is just a call.  This rule
closes that hole: starting from every function in a ``SIM_SCOPE``
module, walk call edges into out-of-scope modules and report paths
that reach an ungated handle call, with the full chain as evidence.

In-scope callees are deliberately not traversed: their ungated calls
are already direct ``obs-ungated`` findings, and double-reporting the
same site under two ids would force double suppressions.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.callgraph import CallGraph, FnKey
from repro.lint.findings import (SEV_ERROR, ChainHop, Finding,
                                 render_chain)
from repro.lint.index import ProjectIndex
from repro.lint.registry import SIM_SCOPE, Project, declare_rule, \
    index_rule

__all__: list[str] = []

_MAX_DEPTH = 6

declare_rule("obs-ungated-transitive", SEV_ERROR,
             "a simulated-core function calls an out-of-scope helper "
             "that uses an observer/checker handle without the `is "
             "not None` gate; the off path must stay one comparison "
             "even across modules")


def _in_sim_scope(relpath: str) -> bool:
    return any(frag in relpath for frag in SIM_SCOPE)


@index_rule
def check_transitive_gating(index: ProjectIndex,
                            project: Project) -> Iterator[Finding]:
    """Walk SIM_SCOPE → out-of-scope call edges to ungated obs calls."""
    sim_mods = [rel for rel in sorted(index.modules)
                if _in_sim_scope(rel)]
    if not sim_mods:
        return
    graph = CallGraph(index)

    for relpath in sim_mods:
        mod = index.modules[relpath]
        for qname in sorted(mod.functions):
            root: FnKey = (relpath, qname)
            root_fn = mod.functions[qname]
            reported: set[tuple[str, int]] = set()
            queue: list[tuple[FnKey, tuple[ChainHop, ...]]] = []
            seen: set[FnKey] = {root}
            for call, target in graph.edges(root):
                if _in_sim_scope(target[0]) or target in seen:
                    continue
                tfn = index.function_at(target)
                if tfn is None:
                    continue
                seen.add(target)
                queue.append((target, (ChainHop(
                    relpath, call.line,
                    f"{root_fn.qname} → {tfn.qname}"),)))
            depth = 0
            while queue and depth <= _MAX_DEPTH:
                next_queue: list[tuple[FnKey,
                                       tuple[ChainHop, ...]]] = []
                for key, hops in queue:
                    fn = index.function_at(key)
                    if fn is None:
                        continue
                    for line, handle in fn.ungated_obs:
                        terminal = (key[0], line)
                        if terminal in reported:
                            continue
                        reported.add(terminal)
                        chain = (*hops, ChainHop(
                            key[0], line, f"{handle}.<hook>(...)"))
                        yield Finding(
                            rule="obs-ungated-transitive",
                            path=relpath, line=hops[0].line,
                            message=(
                                f"'{root_fn.qname}' reaches an "
                                f"ungated observer-handle call "
                                f"({handle}) in an out-of-scope "
                                "helper; gate the helper or hoist the "
                                "null check to the hot path; chain: "
                                f"{render_chain(chain)}"),
                            chain=chain)
                    for call, target in graph.edges(key):
                        if _in_sim_scope(target[0]) or target in seen:
                            continue
                        tfn = index.function_at(target)
                        if tfn is None:
                            continue
                        seen.add(target)
                        next_queue.append((target, (*hops, ChainHop(
                            key[0], call.line, tfn.qname))))
                queue = next_queue
                depth += 1
