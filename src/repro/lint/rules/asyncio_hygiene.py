"""Asyncio hygiene: no blocking I/O statically reachable from the loop.

A single synchronous ``os.listdir`` or journal ``fsync`` inside a
:mod:`repro.serve` coroutine stalls *every* concurrent client — the
whole point of the PR 8 service design was that batch compute runs in
an executor and the event loop only shuffles queues.  This rule walks
the project call graph from every ``async def`` in ``repro/serve/``
and reports the first blocking effect on each path:

* classified blocking calls (``time.sleep``, ``subprocess.*``,
  ``shutil.*``, ``socket.*``, the mutating/walking subset of ``os.*``
  — see :data:`repro.lint.effects.BLOCKING_OS_NAMES`);
* any builtin ``open`` (sync file I/O blocks regardless of mode).

``loop.run_in_executor(pool, fn, ...)`` escapes naturally: ``fn`` is
an *argument* there, not a call, so no edge exists and nothing on the
executor side is reachable.  Deliberate loop-thread blocking (startup
journal replay before the server accepts traffic, durability-before-
acknowledgement journal appends) carries inline suppressions — at the
``async def``, at an intermediate hop, or at the blocking site itself,
whichever end owns the decision.

Findings anchor at the root ``async def`` line so their fingerprints
survive refactors of the helpers they reach through.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.callgraph import CallGraph, FnKey
from repro.lint.effects import FunctionSummary, blocking_kind
from repro.lint.findings import (SEV_ERROR, ChainHop, Finding,
                                 render_chain)
from repro.lint.index import ProjectIndex
from repro.lint.registry import Project, declare_rule, index_rule

__all__: list[str] = []

#: Where coroutines are held to the no-blocking contract.
ASYNC_SCOPE = ("repro/serve/",)

#: Call-graph traversal depth cap (paths deeper than this are far past
#: anything a human would call "statically reachable").
_MAX_DEPTH = 10

declare_rule("async-blocking", SEV_ERROR,
             "blocking calls (sleep, sync file I/O, subprocess, store "
             "walks) must not be statically reachable from repro.serve "
             "coroutines except through run_in_executor; one blocking "
             "hop stalls every concurrent client on the loop")


def _blocking_sites(fn: FunctionSummary) -> list[tuple[int, str]]:
    """Direct blocking effects of one function: (line, label)."""
    sites = [(c.line, kind) for c in fn.calls
             if (kind := blocking_kind(c)) is not None]
    sites.extend((op.line, f"open({op.target}, {op.mode!r})")
                 for op in fn.opens)
    return sorted(set(sites))


@index_rule
def check_async_blocking(index: ProjectIndex,
                         project: Project) -> Iterator[Finding]:
    """BFS from each serve coroutine to the nearest blocking effects."""
    roots: list[FnKey] = []
    for relpath in sorted(index.modules):
        if not any(frag in relpath for frag in ASYNC_SCOPE):
            continue
        mod = index.modules[relpath]
        for qname in sorted(mod.functions):
            if mod.functions[qname].is_async:
                roots.append((relpath, qname))
    if not roots:
        return
    graph = CallGraph(index)

    for root in roots:
        root_fn = index.function_at(root)
        assert root_fn is not None
        reported: set[tuple[str, int]] = set()
        # Queue entries: (key, chain-of-call-hops); BFS finds shortest
        # evidence first.
        queue: list[tuple[FnKey, tuple[ChainHop, ...]]] = [(root, ())]
        seen: set[FnKey] = {root}
        depth = 0
        while queue and depth <= _MAX_DEPTH:
            next_queue: list[tuple[FnKey, tuple[ChainHop, ...]]] = []
            for key, hops in queue:
                fn = index.function_at(key)
                if fn is None:
                    continue
                for line, label in _blocking_sites(fn):
                    terminal = (key[0], line)
                    if terminal in reported:
                        continue
                    reported.add(terminal)
                    chain = (
                        ChainHop(root[0], root_fn.line,
                                 f"async def {root_fn.name}"),
                        *hops,
                        ChainHop(key[0], line, label))
                    yield Finding(
                        rule="async-blocking", path=root[0],
                        line=root_fn.line,
                        message=(
                            f"blocking call {label} is statically "
                            f"reachable from coroutine "
                            f"'{root_fn.qname}'; move it behind "
                            "run_in_executor or annotate why the loop "
                            "may block here; chain: "
                            f"{render_chain(chain)}"),
                        chain=chain)
                for call, target in graph.edges(key):
                    if target in seen:
                        continue
                    tfn = index.function_at(target)
                    if tfn is None:
                        continue
                    seen.add(target)
                    next_queue.append((target, (*hops, ChainHop(
                        key[0], call.line, tfn.qname))))
            queue = next_queue
            depth += 1
