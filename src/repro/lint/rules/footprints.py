"""Footprint completeness: the static half of :mod:`repro.check`.

The happens-before checker can only see races on arrays a kernel
*declares* in its :class:`~repro.kernels.base.AccessSet`; an
undeclared shared array is silently unchecked — exactly the blind spot
Çatalyürek et al. (arXiv:1205.3809) warn about for speculative kernels.
Two rules close it statically:

* ``fp-missing-access`` — a kernel ``parallel_for`` without an
  ``access=`` footprint simulates shared work the checker cannot see;
* ``fp-undeclared-write`` — a replay/chunk-body function that
  subscript-writes a parameter array whose name no ``.writes(...)``
  declaration in the module covers.

The write inference is deliberately syntactic: parameter arrays are the
shared state handed into chunk bodies, locals are scratch.  Annotate
genuine bookkeeping arrays (e.g. replay timestamps) with an inline
``# repro: ignore[fp-undeclared-write] <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import const_str, walk_calls
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.registry import KERNEL_SCOPE, ModuleContext, rule

__all__: list[str] = []

#: numpy in-place scatter helpers: ``np.add.at(arr, idx, v)`` writes arr.
_INPLACE_AT_HELPERS = {"at"}


@rule("fp-missing-access", SEV_ERROR,
      "a kernel parallel_for without access= simulates shared work the "
      "repro.check happens-before checker cannot audit; declare the "
      "chunk footprint (or annotate why the loop shares nothing)",
      scope=KERNEL_SCOPE)
def check_missing_access(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``*.parallel_for(...)`` calls that pass no ``access=``."""
    for call in walk_calls(ctx.tree):
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "parallel_for"):
            continue
        if any(kw.arg == "access" for kw in call.keywords):
            continue
        yield ctx.finding(
            "fp-missing-access", call,
            "parallel_for(...) without access=: the concurrency checker "
            "sees no footprint for this region")


def _declared_arrays(tree: ast.Module) -> tuple[set[str], set[str], bool]:
    """(declared_writes, declared_reads, module_uses_access_sets).

    Collects the string-literal array names handed to ``.writes(...)``
    and ``.reads(...)`` in AccessSet builder chains.
    """
    writes: set[str] = set()
    reads: set[str] = set()
    uses = False
    for call in walk_calls(tree):
        func = call.func
        if isinstance(func, ast.Name) and func.id == "AccessSet":
            uses = True
        if not isinstance(func, ast.Attribute) or not call.args:
            continue
        name = const_str(call.args[0])
        if name is None:
            continue
        if func.attr == "writes":
            writes.add(name)
        elif func.attr == "reads":
            reads.add(name)
    return writes, reads, uses


def _param_writes(fn: ast.FunctionDef) -> Iterator[tuple[str, ast.AST]]:
    """Subscript writes to parameter arrays inside *fn*.

    Yields ``(param_name, node)`` for ``param[idx] = ...``,
    ``param[idx] += ...`` and in-place scatters ``np.<op>.at(param, ...)``.
    Nested functions are walked too (closures are the chunk bodies).
    """
    params = {a.arg for a in fn.args.args + fn.args.kwonlyargs
              if a.arg not in ("self", "cls")}
    if fn.args.vararg is not None:
        params.add(fn.args.vararg.arg)
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _INPLACE_AT_HELPERS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name) and first.id in params:
                yield first.id, node
            continue
        for target in targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
                continue
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in params:
                yield target.value.id, target


@rule("fp-undeclared-write", SEV_ERROR,
      "a kernel chunk/replay body writes a shared parameter array that "
      "no AccessSet .writes(...) in the module declares — the checker "
      "is blind to races on it",
      scope=KERNEL_SCOPE)
def check_undeclared_writes(ctx: ModuleContext) -> Iterator[Finding]:
    """Cross-check inferred parameter-array writes against the module's
    declared AccessSet write footprints."""
    declared_writes, _reads, uses = _declared_arrays(ctx.tree)
    if not uses:
        # Modules that never build an AccessSet (sequential kernels,
        # verification helpers) have no footprint contract to check.
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for name, site in _param_writes(node):
            if name in declared_writes:
                continue
            yield ctx.finding(
                "fp-undeclared-write", site,
                f"'{node.name}' writes parameter array '{name}' but no "
                f"AccessSet in this module declares .writes({name!r}, "
                "...)")
