"""Rule families for :mod:`repro.lint`.

Importing this package registers every rule with the registry; the
engine triggers the import lazily via
:func:`repro.lint.registry.all_rules`.
"""

from repro.lint.rules import (asyncio_hygiene, crash_safety, determinism,
                              env_hygiene, footprints, locks,
                              observer_gating, observer_transitive,
                              static_footprints)

__all__ = ["asyncio_hygiene", "crash_safety", "determinism",
           "env_hygiene", "footprints", "locks", "observer_gating",
           "observer_transitive", "static_footprints"]
