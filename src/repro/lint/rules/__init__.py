"""Rule families for :mod:`repro.lint`.

Importing this package registers every rule with the registry; the
engine triggers the import lazily via
:func:`repro.lint.registry.all_rules`.
"""

from repro.lint.rules import (determinism, env_hygiene, footprints, locks,
                              observer_gating)

__all__ = ["determinism", "env_hygiene", "footprints", "locks",
           "observer_gating"]
