"""Static AccessSet inference: the whole-program footprint rules.

The per-file ``fp-undeclared-write`` rule only sees writes a function
makes *itself*; a chunk body that delegates to a helper —
``_replay(...)`` calling ``_wave_step(..., colors, ...)`` which does
``colors[verts] = ...`` — slips past it, which is exactly the
under-declared speculative access Rokos et al. (arXiv:1505.04086)
identify as where coloring implementations go wrong.  These two rules
close the gap over the project call graph:

* ``fp-undeclared-write-transitive`` (error) — a function in an
  AccessSet-declaring kernel module passes a parameter array to a
  callee (any module, any depth) that subscript-writes it, and no
  ``.writes(...)`` in the kernel module covers that array name.  The
  finding anchors at the call site and carries the full chain down to
  the concrete write.
* ``fp-overbroad-footprint`` (warning) — a ``.writes("name", ...)``
  declaration whose array is never written anywhere in the module,
  directly or through any resolved callee: dead weight that makes the
  race checker look stronger than it is.

Both match arrays by *name* (the AccessSet convention: the declared
label is the chunk-function parameter name) — a renamed pass-through
parameter defeats the diff and is the documented imprecision here.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.callgraph import CallGraph, Chain, infer_transitive_writes
from repro.lint.findings import (SEV_ERROR, SEV_WARNING, ChainHop,
                                 Finding, render_chain)
from repro.lint.index import FilePayload, ProjectIndex
from repro.lint.registry import Project, declare_rule, index_rule

__all__: list[str] = []

_KERNEL_FRAGMENT = "repro/kernels/"

declare_rule("fp-undeclared-write-transitive", SEV_ERROR,
             "a kernel function hands a parameter array to a helper "
             "that writes it, but no AccessSet .writes(...) in the "
             "kernel module declares the array — the race checker is "
             "blind to it through the whole call chain")
declare_rule("fp-overbroad-footprint", SEV_WARNING,
             "an AccessSet declares .writes(...) on an array nothing "
             "in the module writes (directly or through helpers); "
             "over-broad footprints hide real gaps in checker "
             "coverage")


def _chain_hops(chain: Chain) -> tuple[ChainHop, ...]:
    return tuple(ChainHop(path=p, line=ln, note=note)
                 for p, ln, note in chain)


@index_rule
def check_transitive_footprints(index: ProjectIndex,
                                project: Project) -> Iterator[Finding]:
    """Diff transitively inferred parameter writes against each kernel
    module's declared AccessSet write footprints."""
    kernel_mods = [rel for rel in sorted(index.modules)
                   if _KERNEL_FRAGMENT in rel
                   and index.modules[rel].uses_access_sets]
    if not kernel_mods:
        return
    graph = CallGraph(index)
    inferred = infer_transitive_writes(index, graph)

    for relpath in kernel_mods:
        mod = index.modules[relpath]
        declared = mod.declared_writes
        written_names: set[str] = set()
        for qname in sorted(mod.functions):
            fn = mod.functions[qname]
            writes = inferred.get((relpath, qname), {})
            written_names.update(writes)
            for name in sorted(writes):
                chain = writes[name]
                if len(chain) < 2:
                    continue         # direct write: per-file rule's job
                if name not in fn.params or name in declared:
                    continue
                anchor_line = chain[0][1]
                yield Finding(
                    rule="fp-undeclared-write-transitive",
                    path=relpath, line=anchor_line,
                    message=(
                        f"'{qname}' passes parameter array '{name}' "
                        f"down a call chain that writes it, but no "
                        f"AccessSet in this module declares "
                        f".writes({name!r}, ...); chain: "
                        f"{render_chain(_chain_hops(chain))}"),
                    chain=_chain_hops(chain))
        for name in sorted(declared - written_names):
            line = _declaration_line(project, relpath, name)
            yield Finding(
                rule="fp-overbroad-footprint", path=relpath, line=line,
                severity=SEV_WARNING,
                message=(
                    f"AccessSet declares .writes({name!r}, ...) but "
                    f"nothing in this module writes '{name}', directly "
                    "or through any resolved helper; narrow the "
                    "declaration or name the array after the parameter "
                    "that carries it"))


def _declaration_line(project: Project, relpath: str, name: str) -> int:
    """Best-effort line of the ``.writes("name"`` declaration."""
    payload = _payload_for(project, relpath)
    if payload is None:
        return 1
    needles = (f'.writes("{name}"', f".writes('{name}'",
               f'.benign_race("{name}"', f".benign_race('{name}'")
    for i, text in enumerate(payload.lines, start=1):
        if any(needle in text for needle in needles):
            return i
    return 1


def _payload_for(project: Project, relpath: str) -> FilePayload | None:
    for payload in project.modules:
        if getattr(payload, "relpath", None) == relpath:
            return payload
    return None
