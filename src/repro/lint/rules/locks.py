"""Lock/barrier pairing rules for the time-reservation sync model.

In this simulator a :class:`~repro.sim.resources.TicketLock` acquire
*returns the release time* — the whole critical section is priced in
one reservation.  Discarding that return value silently erases the
section from simulated time: the code "acquired" a lock whose release
never reaches the caller's clock, the time-reservation equivalent of an
unpaired acquire/release.  The same holds for ``AtomicVar.rmw`` and
``MemoryChannel.service``.

Barrier arity is the second pairing hazard: a
:class:`~repro.sim.engine.Barrier` built with a hard-coded party count
deadlocks (or releases early) the moment the region's thread count
changes — arity must be derived from the same expression that sizes the
worker spawn loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import walk_calls
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.registry import SIM_SCOPE, ModuleContext, rule

__all__: list[str] = []

#: Reservation methods whose return value carries the completion time.
_RESERVATION_METHODS = {"acquire": "the release time",
                        "rmw": "the completion time",
                        "service": "the finish time"}


@rule("lock-discarded-release", SEV_ERROR,
      "discarding the return of acquire()/rmw()/service() drops the "
      "reservation's completion time — an unpaired acquire in the "
      "time-reservation model",
      scope=SIM_SCOPE)
def check_discarded_release(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag expression statements that call a reservation method and
    throw the returned completion time away."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)):
            continue
        what = _RESERVATION_METHODS.get(call.func.attr)
        if what is None:
            continue
        yield ctx.finding(
            "lock-discarded-release", node,
            f"result of {ast.unparse(call.func)}(...) is discarded; "
            f"{what} never reaches the caller's simulated clock")


@rule("lock-barrier-arity", SEV_WARNING,
      "a Barrier built with a literal party count deadlocks or "
      "releases early when the region's thread count changes; derive "
      "arity from the n_threads expression that sizes the spawn loop",
      scope=SIM_SCOPE)
def check_barrier_arity(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``Barrier(engine, <int literal>, ...)`` constructions."""
    for call in walk_calls(ctx.tree):
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name != "Barrier" or len(call.args) < 2:
            continue
        parties = call.args[1]
        if isinstance(parties, ast.Constant) \
                and isinstance(parties.value, int):
            yield ctx.finding(
                "lock-barrier-arity", call,
                f"Barrier arity is the literal {parties.value}; tie it "
                "to the region's thread count so spawn and join always "
                "agree")
