"""Determinism rules: the simulated core must be byte-stable.

DESIGN.md promises that identical seeds produce identical simulated
cycle counts and identical artifacts across processes and machines.
Anything inside :data:`~repro.lint.registry.SIM_SCOPE` that reads the
wall clock, draws from an unseeded RNG, or lets set iteration order
reach a result breaks that promise in ways the dynamic test suite can
only sample.  These rules ban the constructs outright; intentional
exceptions carry an inline ``# repro: ignore[...]`` with a rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import call_name, parent, walk_calls
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.registry import SIM_SCOPE, ModuleContext, rule

__all__: list[str] = []

#: Stdlib modules whose direct use inside the simulated core is
#: nondeterministic (or machine-dependent) by construction.
_WALLCLOCK_MODULES = {"time", "datetime"}
#: numpy.random attributes that are fine: explicitly-seeded construction.
_SEEDED_NP_ATTRS = {"Generator", "SeedSequence", "BitGenerator", "PCG64",
                    "Philox", "default_rng"}


def _bound_aliases(tree: ast.Module, modules: set[str]) -> set[str]:
    """Local names that refer to any of *modules* via import."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in modules:
                    names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in modules:
                for alias in node.names:
                    names.add(alias.asname or alias.name)
    return names


@rule("det-wallclock", SEV_ERROR,
      "wall-clock reads inside the simulated core make results "
      "machine- and load-dependent; simulated time is the only clock",
      scope=SIM_SCOPE)
def check_wallclock(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag any call through a name bound from ``time``/``datetime``."""
    aliases = _bound_aliases(ctx.tree, _WALLCLOCK_MODULES)
    if not aliases:
        return
    for call in walk_calls(ctx.tree):
        func = call.func
        base: ast.expr | None = None
        if isinstance(func, ast.Attribute):
            base = func.value
            while isinstance(base, ast.Attribute):
                base = base.value
        elif isinstance(func, ast.Name):
            base = func
        if isinstance(base, ast.Name) and base.id in aliases:
            yield ctx.finding(
                "det-wallclock", call,
                f"call into wall-clock module ({ast.unparse(func)}); "
                "simulated components must take time from the engine")


@rule("det-unseeded-rng", SEV_ERROR,
      "unseeded RNG construction or legacy global-state numpy.random "
      "draws make replay non-reproducible; thread a seed through "
      "rng_from_seed or default_rng(seed)",
      scope=SIM_SCOPE)
def check_unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``default_rng()`` with no seed, stdlib ``random`` use, and
    legacy ``np.random.<draw>()`` calls on the hidden global state."""
    random_aliases = _bound_aliases(ctx.tree, {"random"})
    for call in walk_calls(ctx.tree):
        func = call.func
        name = call_name(call)
        if name == "default_rng" and not call.args and not call.keywords:
            yield ctx.finding(
                "det-unseeded-rng", call,
                "default_rng() without a seed is entropy-seeded; pass "
                "the run's seed (or use _util.rng_from_seed)")
            continue
        if isinstance(func, ast.Name) and func.id in random_aliases:
            yield ctx.finding(
                "det-unseeded-rng", call,
                f"stdlib random.{func.id}() draws from hidden global "
                "state; use a seeded numpy Generator")
            continue
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            if func.value.id in random_aliases:
                yield ctx.finding(
                    "det-unseeded-rng", call,
                    f"stdlib random.{func.attr}() draws from hidden "
                    "global state; use a seeded numpy Generator")
                continue
        # np.random.<draw>(...) — the legacy global-state API.
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Attribute) \
                and func.value.attr == "random" \
                and isinstance(func.value.value, ast.Name) \
                and func.value.value.id in ("np", "numpy") \
                and func.attr not in _SEEDED_NP_ATTRS:
            yield ctx.finding(
                "det-unseeded-rng", call,
                f"np.random.{func.attr}() uses the legacy global RNG "
                "state; construct a Generator with an explicit seed")


@rule("det-urandom", SEV_ERROR,
      "OS entropy (os.urandom / secrets) is nondeterministic by design "
      "and must never reach simulated state",
      scope=SIM_SCOPE)
def check_urandom(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``os.urandom`` and any call through the ``secrets`` module."""
    secrets_aliases = _bound_aliases(ctx.tree, {"secrets"})
    for call in walk_calls(ctx.tree):
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "urandom" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "os":
            yield ctx.finding("det-urandom", call,
                              "os.urandom() reads OS entropy")
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in secrets_aliases:
            yield ctx.finding("det-urandom", call,
                              f"secrets.{func.attr}() reads OS entropy")
        elif isinstance(func, ast.Name) and func.id in secrets_aliases:
            yield ctx.finding("det-urandom", call,
                              f"{func.id}() reads OS entropy")


def _is_set_expr(node: ast.expr) -> bool:
    """A literal set, a set comprehension, or a ``set()``/``frozenset()``
    constructor call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
        and node.func.id in ("set", "frozenset")


@rule("det-set-order", SEV_WARNING,
      "iterating a set in result-feeding code leaks hash order into "
      "outputs; sort first (sorted(...)) or keep a list",
      scope=SIM_SCOPE)
def check_set_order(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag for-loops/comprehensions over set expressions and
    ``list(set(...))`` / ``tuple(set(...))`` conversions."""
    for node in ast.walk(ctx.tree):
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iters.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple") and node.args \
                and _is_set_expr(node.args[0]):
            up = parent(node)
            if not (isinstance(up, ast.Call)
                    and isinstance(up.func, ast.Name)
                    and up.func.id == "sorted"):
                yield ctx.finding(
                    "det-set-order", node,
                    f"{node.func.id}(set(...)) materialises hash order; "
                    "use sorted(...)")
            continue
        for it in iters:
            if _is_set_expr(it):
                yield ctx.finding(
                    "det-set-order", node,
                    "iteration over a set expression is hash-ordered; "
                    "wrap in sorted(...) before it can feed a result")
