"""Environment hygiene: every ``REPRO_*`` read goes through ``_util``.

The validated parsers (:func:`repro._util.env_float` and friends) are
the single choke point for configuration from the environment: they
reject malformed values loudly, and — because every read names its
variable there — give this rule a complete registry of the project's
environment surface.  The registry powers ``ENV.md`` (see
:mod:`repro.lint.envdoc`) and the ``env-undocumented`` finalizer, which
fails the lint when a variable is read but not documented.

Writes (``os.environ[...] = ...``, ``pop``) stay legal everywhere: the
CLI pins variables for child code, and save/restore wrappers need raw
access (annotated inline where they also read).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import const_str, walk_calls
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.registry import (EnvUse, ModuleContext, Project,
                                 declare_rule, finalizer, rule)

__all__: list[str] = []

#: The sanctioned parser helpers in :mod:`repro._util`.
ENV_PARSERS = ("env_float", "env_int", "env_bool", "env_str", "env_csv")

#: The one module allowed to touch ``os.environ`` for ``REPRO_*`` reads.
_UTIL_MODULE = "repro/_util.py"


def _env_read_name(call_or_sub: ast.AST) -> str | None:
    """The variable name of a raw environ read, if this node is one.

    Matches ``os.environ.get(X, ...)``, ``os.getenv(X, ...)`` and the
    Load-context subscript ``os.environ[X]`` with a string-literal X.
    """
    if isinstance(call_or_sub, ast.Call):
        func = call_or_sub.func
        if isinstance(func, ast.Attribute) and func.attr == "get" \
                and isinstance(func.value, ast.Attribute) \
                and func.value.attr == "environ" \
                and isinstance(func.value.value, ast.Name) \
                and func.value.value.id == "os" and call_or_sub.args:
            return const_str(call_or_sub.args[0])
        if isinstance(func, ast.Attribute) and func.attr == "getenv" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "os" and call_or_sub.args:
            return const_str(call_or_sub.args[0])
        return None
    if isinstance(call_or_sub, ast.Subscript) \
            and isinstance(call_or_sub.ctx, ast.Load) \
            and isinstance(call_or_sub.value, ast.Attribute) \
            and call_or_sub.value.attr == "environ" \
            and isinstance(call_or_sub.value.value, ast.Name) \
            and call_or_sub.value.value.id == "os":
        return const_str(call_or_sub.slice)
    return None


@rule("env-raw-read", SEV_ERROR,
      "REPRO_* environment reads must go through the validated _util "
      "parsers (env_float/env_int/env_bool/env_str/env_csv) so typos "
      "fail loudly and the variable enters the ENV.md registry")
def check_raw_reads(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag raw ``os.environ`` reads of ``REPRO_*`` names outside
    ``_util``, and record every parser read site into the registry."""
    in_util = ctx.relpath.endswith(_UTIL_MODULE)
    for node in ast.walk(ctx.tree):
        name = _env_read_name(node)
        if name is not None and name.startswith("REPRO_"):
            if in_util:
                continue
            yield ctx.finding(
                "env-raw-read", node,
                f"raw environment read of {name}; use the _util "
                "env_* parsers")
            # Raw reads still enter the registry so ENV.md stays
            # complete while a violation is being migrated.
            ctx.project.env_uses.append(EnvUse(
                name=name, parser="raw", default="",
                path=ctx.relpath, line=int(getattr(node, "lineno", 0))))
    for call in walk_calls(ctx.tree):
        func = call.func
        fn_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if fn_name not in ENV_PARSERS or not call.args:
            continue
        var = const_str(call.args[0])
        if var is None:
            continue
        default = ""
        if len(call.args) > 1:
            default = ast.unparse(call.args[1])
        for kw in call.keywords:
            if kw.arg == "default":
                default = ast.unparse(kw.value)
        ctx.project.env_uses.append(EnvUse(
            name=var, parser=fn_name, default=default,
            path=ctx.relpath, line=call.lineno))


def _env_write_name(node: ast.AST) -> str | None:
    """The variable name of an ``os.environ[X] = ...`` write site."""
    if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store) \
            and isinstance(node.value, ast.Attribute) \
            and node.value.attr == "environ" \
            and isinstance(node.value.value, ast.Name) \
            and node.value.value.id == "os":
        return const_str(node.slice)
    return None


@rule("env-unread-write", SEV_ERROR,
      "setting a REPRO_* variable nothing ever parses is dead "
      "configuration; register a reader or drop the write")
def collect_writes(ctx: ModuleContext) -> Iterator[Finding]:
    """Record ``os.environ[...] = ...`` sites (verified in finalize)."""
    for node in ast.walk(ctx.tree):
        name = _env_write_name(node)
        if name is not None and name.startswith("REPRO_"):
            ctx.project.env_uses.append(EnvUse(
                name=name, parser="write", default="",
                path=ctx.relpath, line=int(getattr(node, "lineno", 0))))
    return
    yield  # pragma: no cover  (makes this a generator like its peers)


declare_rule("env-undocumented", SEV_ERROR,
             "every environment variable the code reads must be "
             "documented in ENV.md (regenerate with "
             "`repro lint --write-env-md ENV.md`)")


@finalizer
def check_documented(project: Project) -> Iterator[Finding]:
    """Fail when a read variable is missing from the project's ENV.md,
    or when a variable is written but never read through a parser."""
    doc_text = ""
    if project.env_doc_path is not None:
        try:
            with open(project.env_doc_path, "r", encoding="utf-8") as fh:
                doc_text = fh.read()
        except OSError:
            doc_text = ""
    reads: dict[str, EnvUse] = {}
    writes: dict[str, EnvUse] = {}
    for use in project.env_uses:
        table = writes if use.parser == "write" else reads
        if use.name not in table:
            table[use.name] = use
    if project.env_doc_path is not None:
        for name in sorted(reads):
            if name not in doc_text:
                use = reads[name]
                yield Finding(
                    rule="env-undocumented", path=use.path, line=use.line,
                    message=f"{name} is read here but not documented in "
                            "ENV.md; regenerate it with `repro lint "
                            "--write-env-md ENV.md`")
    for name in sorted(set(writes) - set(reads)):
        use = writes[name]
        yield Finding(
            rule="env-unread-write", path=use.path, line=use.line,
            message=f"{name} is written here but nothing reads it "
                    "through a _util parser")
