"""Observer gating: telemetry/checker hooks stay one comparison when off.

The telemetry (:mod:`repro.obs`) and concurrency-checking
(:mod:`repro.check`) layers promise zero perturbation when inactive:
handles are captured once (``self.trace = _obs_tracer.active()``) and
every use sits behind a single ``is not None`` test.  A hook call that
skips the null check crashes every uninstrumented run — or worse, gets
"fixed" with a try/except that hides the cost asymmetry.  This rule
enforces the idiom statically on the simulated core.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import guards_with_not_none, walk_calls
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.registry import SIM_SCOPE, ModuleContext, rule

__all__: list[str] = []

#: Attribute/variable names that hold an observer or checker handle
#: (None when no instrument is installed).
HANDLE_NAMES = ("trace", "_trace", "check", "_check", "tracer")


def _handle_base(call: ast.Call) -> ast.expr | None:
    """The handle expression a hook call goes through, if any.

    ``ctx.trace.span(...)`` → ``ctx.trace``; ``self._check.on_rmw(...)``
    → ``self._check``; ``engine.check.on_barrier(...)`` →
    ``engine.check``.  Plain names (``trace.end(...)``) match too.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name) and base.id in HANDLE_NAMES:
        return base
    if isinstance(base, ast.Attribute) and base.attr in HANDLE_NAMES:
        return base
    return None


@rule("obs-ungated", SEV_ERROR,
      "calls into repro.obs / repro.check handles must sit behind the "
      "single `is not None` null check so the off path stays one "
      "comparison and uninstrumented runs cannot crash",
      scope=SIM_SCOPE)
def check_gating(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag handle method calls not dominated by an ``is not None`` test
    on the same handle expression."""
    for call in walk_calls(ctx.tree):
        base = _handle_base(call)
        if base is None:
            continue
        # A bare name that is actually a module alias (e.g. `_check`
        # bound by `from repro.check import checker as _check`) is a
        # module call like `_check.active()`, not a handle use.
        if isinstance(base, ast.Name) and base.id in ctx.import_bound:
            continue
        if guards_with_not_none(call, base):
            continue
        yield ctx.finding(
            "obs-ungated", call,
            f"hook call {ast.unparse(call.func)}(...) is not guarded by "
            f"`if {ast.unparse(base)} is not None:`")
