"""Observer gating: telemetry/checker hooks stay one comparison when off.

The telemetry (:mod:`repro.obs`) and concurrency-checking
(:mod:`repro.check`) layers promise zero perturbation when inactive:
handles are captured once (``self.trace = _obs_tracer.active()``) and
every use sits behind a single ``is not None`` test.  A hook call that
skips the null check crashes every uninstrumented run — or worse, gets
"fixed" with a try/except that hides the cost asymmetry.  This rule
enforces the idiom statically on the simulated core.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (HANDLE_NAMES, guards_with_not_none,
                                handle_base, walk_calls)
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.registry import SIM_SCOPE, ModuleContext, rule

__all__: list[str] = []

# Back-compat aliases: the handle helpers moved to astutil so the
# effect extractor can share them without importing the rules package.
_handle_base = handle_base


@rule("obs-ungated", SEV_ERROR,
      "calls into repro.obs / repro.check handles must sit behind the "
      "single `is not None` null check so the off path stays one "
      "comparison and uninstrumented runs cannot crash",
      scope=SIM_SCOPE)
def check_gating(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag handle method calls not dominated by an ``is not None`` test
    on the same handle expression."""
    for call in walk_calls(ctx.tree):
        base = _handle_base(call)
        if base is None:
            continue
        # A bare name that is actually a module alias (e.g. `_check`
        # bound by `from repro.check import checker as _check`) is a
        # module call like `_check.active()`, not a handle use.
        if isinstance(base, ast.Name) and base.id in ctx.import_bound:
            continue
        if guards_with_not_none(call, base):
            continue
        yield ctx.finding(
            "obs-ungated", call,
            f"hook call {ast.unparse(call.func)}(...) is not guarded by "
            f"`if {ast.unparse(base)} is not None:`")
