"""Crash-safety write protocol for durable roots (whole-program rule).

Everything persisted under a store/registry/journal root follows one
protocol, established by :func:`repro._util.atomic_write_text`,
``graphstore.format.save_graph`` and the serve journal compactor:
write a scratch file, ``flush()`` + ``os.fsync()`` it, then publish
with ``os.replace``.  A bare ``open(path, "w")`` straight onto a
durable path can be torn by a crash into a half-written object that
every later read trusts; an unfenced tmp→replace can publish a file
whose *data* never reached disk (the rename can be durable before the
content is).

Two error rules over the effect summaries of durable-scope modules:

* ``crash-bare-write`` — a write-capable ``open`` (``w``/``x``/``+``
  modes) whose target is not a recognizable scratch file;
* ``crash-unfenced-replace`` — a scratch-file write in a function that
  publishes via ``os.replace`` without an ``os.fsync`` in between.

Append-mode opens are exempt: the journal's append-only WAL fsyncs per
record and its open/append/fsync sites span methods, which a
per-function sequence check cannot follow (documented imprecision —
the journal's own tests own that protocol).  Deliberate protocol
breaks (fault injection tearing files on purpose, user-chosen CLI
output paths) carry inline suppressions at the open site.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import SEV_ERROR, ChainHop, Finding
from repro.lint.index import ProjectIndex
from repro.lint.registry import Project, declare_rule, index_rule

__all__: list[str] = []

#: Modules whose files live under durable on-disk roots.
DURABLE_SCOPE = ("repro/graphstore/", "repro/campaign/", "repro/serve/",
                 "repro/_util.py")

declare_rule("crash-bare-write", SEV_ERROR,
             "files under store/registry/journal roots must be "
             "published via tmp-file + flush/fsync + os.replace; a "
             "bare write-mode open can be torn by a crash into a "
             "half-written object later reads will trust")
declare_rule("crash-unfenced-replace", SEV_ERROR,
             "a tmp-file publish via os.replace without an os.fsync "
             "between write and rename can survive a crash as a "
             "durable name pointing at never-synced data")


def _write_capable(mode: str) -> bool:
    """True for modes the protocol governs (append is exempt)."""
    if mode.startswith("a"):
        return False
    return any(ch in mode for ch in ("w", "x", "+"))


@index_rule
def check_crash_safety(index: ProjectIndex,
                       project: Project) -> Iterator[Finding]:
    """Run the write-protocol check over every durable-scope module."""
    for relpath in sorted(index.modules):
        if not any(frag in relpath for frag in DURABLE_SCOPE):
            continue
        mod = index.modules[relpath]
        for qname in sorted(mod.functions):
            fn = mod.functions[qname]
            if not fn.opens:
                continue
            fsync_lines = sorted(
                c.line for c in fn.calls
                if c.base == "os" and c.name in ("fsync", "fdatasync"))
            replace_lines = sorted(
                c.line for c in fn.calls
                if c.base == "os" and c.name == "replace")
            for op in fn.opens:
                if not _write_capable(op.mode):
                    continue
                if op.tmpish:
                    published = [ln for ln in replace_lines
                                 if ln >= op.line]
                    if not published:
                        continue     # scratch file never published
                    fenced = any(op.line <= ln <= published[0]
                                 for ln in fsync_lines)
                    if fenced:
                        continue
                    yield Finding(
                        rule="crash-unfenced-replace", path=relpath,
                        line=op.line,
                        message=(
                            f"'{qname}' writes scratch file "
                            f"{op.target} and publishes it with "
                            f"os.replace (line {published[0]}) without "
                            "an os.fsync in between; the rename can "
                            "become durable before the data does"),
                        chain=(
                            ChainHop(relpath, op.line,
                                     f"open({op.target}, "
                                     f"{op.mode!r})"),
                            ChainHop(relpath, published[0],
                                     "os.replace")))
                else:
                    yield Finding(
                        rule="crash-bare-write", path=relpath,
                        line=op.line,
                        message=(
                            f"'{qname}' opens {op.target} with mode "
                            f"{op.mode!r} under a durable root; write "
                            "a tmp file, flush+fsync it, then publish "
                            "with os.replace (see "
                            "repro._util.atomic_write_text)"))
