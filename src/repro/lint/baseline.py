"""Committed baseline of grandfathered lint findings.

The baseline lets the lint gate turn on strict without a flag-day
rewrite: existing findings are recorded once (``repro lint
--update-baseline --reason "..."``) and only *new* findings fail the
run.  Entries are keyed by content fingerprint — rule id, path, the
offending line's text, and an occurrence index — so they survive
unrelated line drift but expire the moment the offending code changes.

Every entry carries a written reason, same contract as inline
suppressions: grandfathering is documentation, not amnesty.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro._util import atomic_write_text, canonical_json
from repro.lint.findings import Finding

__all__ = ["BaselineEntry", "load_baseline", "save_baseline",
           "entries_for"]

#: Default file name, resolved against the repo root by the CLI.
BASELINE_NAME = "lint_baseline.json"


@dataclass
class BaselineEntry:
    """One grandfathered finding."""

    fingerprint: str
    rule: str
    path: str
    reason: str

    def to_dict(self) -> dict[str, str]:
        return {"fingerprint": self.fingerprint, "rule": self.rule,
                "path": self.path, "reason": self.reason}


def load_baseline(path: str) -> dict[str, BaselineEntry]:
    """Baseline entries keyed by fingerprint; missing file → empty."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload.get("entries", []) if isinstance(payload, dict) \
        else []
    out: dict[str, BaselineEntry] = {}
    for raw in entries:
        entry = BaselineEntry(
            fingerprint=str(raw["fingerprint"]), rule=str(raw["rule"]),
            path=str(raw["path"]), reason=str(raw.get("reason", "")))
        out[entry.fingerprint] = entry
    return out


def entries_for(findings: list[Finding], reason: str) -> list[BaselineEntry]:
    """Baseline entries for *findings*, all sharing one *reason*."""
    return [BaselineEntry(fingerprint=f.fingerprint, rule=f.rule,
                          path=f.path, reason=reason)
            for f in findings]


def save_baseline(path: str, entries: list[BaselineEntry]) -> None:
    """Write the baseline deterministically (sorted, canonical JSON)."""
    ordered = sorted(entries, key=lambda e: (e.path, e.rule,
                                             e.fingerprint))
    payload = {"version": 1,
               "entries": [e.to_dict() for e in ordered]}
    atomic_write_text(path, canonical_json(payload) + "\n")
