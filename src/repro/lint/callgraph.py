"""Approximate call-graph resolution over the lint project index.

Resolution is tiered, most-precise first, and deliberately gives up
rather than guess (DESIGN.md documents the imprecision budget):

1. **bare calls** — ``helper(...)`` resolves to a function of the same
   module, else through the module's import table
   (``from repro.x import helper``);
2. **self/cls methods** — ``self.meth(...)`` resolves within the
   enclosing class, then through its base classes (by name, up to a
   small depth);
3. **qualified calls** — ``alias.fn(...)`` where ``alias`` imports a
   ``repro.*`` module, and ``Cls.meth(...)`` where ``Cls`` imports a
   known class (``Journal.open``);
4. **unique-name fallback** — ``obj.meth(...)`` on an unknown receiver
   links to project methods named ``meth`` only when at most
   :data:`MAX_FALLBACK_CANDIDATES` exist and the name is not in the
   common-name stoplist; otherwise no edge (an explicit unknown).

Edges carry their :class:`~repro.lint.effects.CallSite`, whose
plain-``Name`` arguments drive the transitive parameter-write fixpoint
(:func:`infer_transitive_writes`) behind static AccessSet checking.
"""

from __future__ import annotations

from typing import Any

from repro.lint.effects import CallSite, FunctionSummary
from repro.lint.index import ModuleSummary, ProjectIndex

__all__ = ["FnKey", "Chain", "CallGraph", "infer_transitive_writes",
           "MAX_FALLBACK_CANDIDATES"]

#: One function: (repo-relative module path, qualified name).
FnKey = tuple[str, str]

#: Evidence chain: hops of (relpath, line, human label).
Chain = tuple[tuple[str, int, str], ...]

#: Unknown-receiver calls link only when the method name has at most
#: this many definitions project-wide.
MAX_FALLBACK_CANDIDATES = 2

#: Method names too common to trust for unknown-receiver resolution —
#: linking ``anything.get(...)`` to a random ``get`` would drown the
#: rules in false chains.
_FALLBACK_STOPLIST = frozenset({
    "get", "put", "set", "add", "pop", "run", "close", "open", "read",
    "write", "append", "update", "items", "keys", "values", "copy",
    "clear", "sort", "remove", "insert", "send", "recv", "start",
    "stop", "join", "flush", "next", "name", "format", "count",
    "index", "main", "build", "load", "save", "parse", "check",
    "report", "result", "cancel", "wait", "acquire", "release",
    "submit", "encode", "decode", "exists", "strip", "split",
})

#: Depth cap for base-class walks during self-call resolution.
_BASE_DEPTH = 3


class CallGraph:
    """Lazy, memoised edge resolution over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._edges: dict[FnKey, tuple[tuple[CallSite, FnKey], ...]] = {}

    # ----- public API ------------------------------------------------------

    def edges(self, key: FnKey) -> tuple[tuple[CallSite, FnKey], ...]:
        """Resolved outgoing edges of *key*, deterministic order."""
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        mod = self.index.modules.get(key[0])
        fn = mod.functions.get(key[1]) if mod else None
        out: list[tuple[CallSite, FnKey]] = []
        if mod is not None and fn is not None:
            for call in fn.calls:
                for target in self.resolve(mod, fn, call):
                    out.append((call, target))
        edges = tuple(sorted(
            out, key=lambda e: (e[0].line, e[1][0], e[1][1])))
        self._edges[key] = edges
        return edges

    def resolve(self, mod: ModuleSummary, fn: FunctionSummary,
                call: CallSite) -> list[FnKey]:
        """Every function *call* may invoke (possibly empty)."""
        if call.base == "":
            return self._resolve_bare(mod, call.name)
        if call.base in ("self", "cls") and fn.class_name:
            found = self._resolve_method(mod, fn.class_name, call.name,
                                         _BASE_DEPTH)
            if found:
                return found
            return self._resolve_fallback(call.name)
        qualified = self._resolve_qualified(mod, call)
        if qualified:
            return qualified
        return self._resolve_fallback(call.name)

    # ----- tiers -----------------------------------------------------------

    def _resolve_bare(self, mod: ModuleSummary, name: str) -> list[FnKey]:
        if name in mod.functions:
            return [(mod.relpath, name)]
        local = sorted(
            q for q, f in mod.functions.items()
            if f.name == name and not f.class_name)
        if local:
            return [(mod.relpath, q)
                    for q in local[:MAX_FALLBACK_CANDIDATES]]
        target = mod.imports.get(name)
        if target is None:
            return []
        resolved = self._resolve_symbol(target)
        if resolved is None:
            return []
        kind, payload = resolved
        if kind == "function":
            return [payload]
        if kind == "class":
            relpath, cls = payload
            init = f"{cls}.__init__"
            if init in self.index.modules[relpath].functions:
                return [(relpath, init)]
        return []

    def _resolve_method(self, mod: ModuleSummary, cls: str, name: str,
                        depth: int) -> list[FnKey]:
        summary = mod.classes.get(cls)
        qname = f"{cls}.{name}"
        if qname in mod.functions:
            return [(mod.relpath, qname)]
        if summary is None or depth <= 0:
            return []
        for base in summary.bases:
            located = self._locate_class(mod, base)
            if located is None:
                continue
            base_rel, base_cls = located
            base_mod = self.index.modules[base_rel]
            found = self._resolve_method(base_mod, base_cls, name,
                                         depth - 1)
            if found:
                return found
        return []

    def _resolve_qualified(self, mod: ModuleSummary,
                           call: CallSite) -> list[FnKey]:
        target = mod.imports.get(call.base, call.base)
        resolved = self._resolve_symbol(target)
        if resolved is None:
            return []
        kind, payload = resolved
        if kind == "module":
            tmod = self.index.modules[payload]
            if call.name in tmod.functions:
                return [(payload, call.name)]
            if call.name in tmod.classes:
                init = f"{call.name}.__init__"
                if init in tmod.functions:
                    return [(payload, init)]
            return []
        if kind == "class":
            relpath, cls = payload
            return self._resolve_method(self.index.modules[relpath],
                                        cls, call.name, _BASE_DEPTH)
        if kind == "function":
            # alias names a function; attribute call on it (rare) — no
            # edge (calling an attribute of a function object).
            return []
        return []

    def _resolve_fallback(self, name: str) -> list[FnKey]:
        if name in _FALLBACK_STOPLIST:
            return []
        candidates = self.index.methods_named(name)
        if 1 <= len(candidates) <= MAX_FALLBACK_CANDIDATES:
            return candidates
        return []

    # ----- symbol helpers --------------------------------------------------

    def _resolve_symbol(self, dotted: str) -> tuple[str, Any] | None:
        """Classify a dotted import target against the index.

        Returns ``("module", relpath)``, ``("function", FnKey)``,
        ``("class", (relpath, class_name))`` or None for anything
        outside the indexed project (stdlib, third-party).
        """
        by_name = self.index.by_module_name
        if dotted in by_name:
            return ("module", by_name[dotted])
        if "." not in dotted:
            return None
        prefix, leaf = dotted.rsplit(".", 1)
        if prefix in by_name:
            relpath = by_name[prefix]
            mod = self.index.modules[relpath]
            if leaf in mod.classes:
                return ("class", (relpath, leaf))
            if leaf in mod.functions:
                return ("function", (relpath, leaf))
            return None
        if prefix.count(".") >= 1:
            head, mid = prefix.rsplit(".", 1)
            if head in by_name:
                relpath = by_name[head]
                mod = self.index.modules[relpath]
                if mid in mod.classes \
                        and f"{mid}.{leaf}" in mod.functions:
                    return ("function", (relpath, f"{mid}.{leaf}"))
        return None

    def _locate_class(self, mod: ModuleSummary,
                      base_text: str) -> tuple[str, str] | None:
        """Resolve a base-class expression to ``(relpath, class)``."""
        name = base_text.split("[", 1)[0].strip()
        if name in mod.classes:
            return (mod.relpath, name)
        leaf = name.split(".")[-1]
        target = mod.imports.get(name) or mod.imports.get(
            name.split(".", 1)[0])
        if target is None:
            return None
        if name != leaf and not target.endswith(leaf):
            target = f"{target}.{name.split('.', 1)[1]}"
        resolved = self._resolve_symbol(target)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None


def _arg_for_param(call: CallSite, params: tuple[str, ...],
                   position: int) -> str | None:
    """The caller-side plain-Name argument feeding ``params[position]``."""
    param = params[position]
    positional = [a for a in call.args if a.keyword is None]
    if position < len(positional):
        return positional[position].name
    for arg in call.args:
        if arg.keyword == param:
            return arg.name
    return None


def infer_transitive_writes(
        index: ProjectIndex, graph: CallGraph,
        max_rounds: int = 8) -> dict[FnKey, dict[str, Chain]]:
    """Fixpoint: which caller-scope names each function writes through
    subscripts, directly or via callees, with evidence chains.

    The result maps every function to ``{name: chain}`` where *name* is
    a name in that function's own scope (parameter or local) and
    *chain* walks from the first call hop down to the concrete
    ``x[i] = ...`` site.  Propagation across an edge happens only when
    the written name is a *parameter* of the callee and the caller
    passes a plain name for it — anything fancier (attribute loads,
    slices of slices) drops the edge rather than guessing.
    """
    inferred: dict[FnKey, dict[str, Chain]] = {}
    keys: list[FnKey] = []
    for relpath in sorted(index.modules):
        mod = index.modules[relpath]
        for qname in sorted(mod.functions):
            key = (relpath, qname)
            keys.append(key)
            fn = mod.functions[qname]
            direct: dict[str, Chain] = {}
            for name, line in fn.sub_writes:
                if name not in direct:
                    direct[name] = ((relpath, line,
                                     f"writes {name}[...]"),)
            inferred[key] = direct

    for _ in range(max_rounds):
        changed = False
        for key in keys:
            mod = index.modules[key[0]]
            fn = mod.functions[key[1]]
            mine = inferred[key]
            for call, target in graph.edges(key):
                tfn = index.function_at(target)
                if tfn is None or target == key:
                    continue
                theirs = inferred.get(target, {})
                for pos, param in enumerate(tfn.params):
                    chain = theirs.get(param)
                    if chain is None:
                        continue
                    caller_name = _arg_for_param(call, tfn.params, pos)
                    if caller_name is None:
                        continue
                    hop = (key[0], call.line, tfn.qname)
                    candidate = (hop,) + chain
                    old = mine.get(caller_name)
                    if old is None or len(candidate) < len(old):
                        mine[caller_name] = candidate
                        changed = True
        if not changed:
            break
    return inferred
