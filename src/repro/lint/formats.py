"""Machine-readable lint report formats: GitHub annotations and SARIF.

Two renderings of a :class:`~repro.lint.engine.LintResult` for CI
surfaces:

* ``github`` — GitHub Actions workflow commands (``::error file=…``),
  one line per actionable finding, which the Actions runner turns into
  inline PR annotations.  The CI lint step runs with
  ``--format=github`` so a cross-module finding shows up *on the line
  that anchors it*, with the full call chain in the message.
* ``sarif`` — a SARIF 2.1.0 document.  Call-chain evidence maps onto
  ``relatedLocations`` (one per hop, in order), and the engine's
  content fingerprint is exported as a ``partialFingerprints`` entry so
  SARIF consumers track findings across commits exactly like the
  committed baseline does.

Both renderers are pure functions of the result — no I/O — and emit
keys in sorted order so output is byte-deterministic, matching the
engine's own determinism contract.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.registry import all_rules

__all__ = ["format_github", "format_sarif", "FORMATS"]

#: Accepted ``repro lint --format`` values (``text`` is the default
#: human report rendered by the CLI itself).
FORMATS = ("text", "github", "sarif")

#: Version stamped into the partialFingerprints key; bump when the
#: fingerprint recipe in :mod:`repro.lint.findings` changes shape.
_FINGERPRINT_KEY = "reproLint/v1"


# ----- GitHub workflow commands --------------------------------------------

def _escape_data(text: str) -> str:
    """Escape a workflow-command message (order matters: ``%`` first)."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def _escape_property(text: str) -> str:
    """Escape a workflow-command property value (file=, title=)."""
    return (_escape_data(text)
            .replace(":", "%3A")
            .replace(",", "%2C"))


def format_github(result: LintResult) -> str:
    """GitHub Actions annotations, one line per actionable finding."""
    lines = []
    for finding in result.findings:
        command = "error" if finding.severity == SEV_ERROR else "warning"
        lines.append(
            f"::{command} file={_escape_property(finding.path)},"
            f"line={finding.line},"
            f"title={_escape_property(finding.rule)}::"
            f"{_escape_data(finding.message)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----- SARIF 2.1.0 ---------------------------------------------------------

def _sarif_result(finding: Finding) -> dict[str, object]:
    out: dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == SEV_ERROR else "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line},
            },
        }],
    }
    if finding.fingerprint:
        out["partialFingerprints"] = {
            _FINGERPRINT_KEY: finding.fingerprint}
    if finding.chain:
        out["relatedLocations"] = [{
            "id": i,
            "physicalLocation": {
                "artifactLocation": {"uri": hop.path},
                "region": {"startLine": hop.line},
            },
            "message": {"text": hop.note or f"{hop.path}:{hop.line}"},
        } for i, hop in enumerate(finding.chain)]
    return out


def format_sarif(result: LintResult) -> str:
    """One-run SARIF 2.1.0 document covering the actionable findings."""
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro lint",
                    "informationUri":
                        "https://github.com/repro/repro",
                    "rules": [{
                        "id": spec.id,
                        "shortDescription": {"text": spec.description},
                        "defaultConfiguration": {
                            "level": "error"
                            if spec.severity == SEV_ERROR
                            else "warning"},
                    } for spec in all_rules()],
                },
            },
            "results": [_sarif_result(f) for f in result.findings],
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
