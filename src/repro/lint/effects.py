"""Per-function effect summaries: the phase-1 data of whole-program lint.

One :class:`FunctionSummary` per ``def``/``async def`` captures, as
plain picklable data (no AST nodes survive), everything the phase-2
cross-module rules reason about:

* every call site, with enough of the callee expression to resolve it
  against the project call graph (:mod:`repro.lint.callgraph`) and the
  plain-``Name`` arguments so array footprints map through helpers;
* subscripted writes (``x[i] = ...``, ``x[i] += ...``,
  ``np.add.at(x, ...)``) — the raw material of static
  :class:`~repro.kernels.base.AccessSet` inference;
* ``open(...)`` sites with their mode and a tmp-file heuristic — the
  raw material of the crash-safety write-protocol rule;
* calls through observer/checker handles that are *not* behind the
  ``is not None`` gate — the raw material of the transitive
  observer-gating rule.

Extraction is purely syntactic and intentionally approximate; the
DESIGN.md analyzer section documents the imprecision sources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.astutil import (const_str, guards_with_not_none,
                                handle_base)

__all__ = ["CallArg", "CallSite", "OpenOp", "FunctionSummary",
           "extract_functions", "BLOCKING_OS_NAMES", "blocking_kind"]

#: ``os.<name>`` calls the asyncio-hygiene rule treats as blocking I/O.
#: ``os.path.*`` stats are deliberately absent: they are treated as
#: cheap (documented imprecision).
BLOCKING_OS_NAMES = frozenset({
    "listdir", "walk", "scandir", "fsync", "fdatasync", "replace",
    "rename", "truncate", "makedirs", "removedirs", "remove", "unlink",
    "rmdir", "link", "symlink", "system", "popen",
})


@dataclass(frozen=True)
class CallArg:
    """One call argument: keyword (or None) and the plain-Name text of
    the value when the argument is a bare name, else None."""

    keyword: str | None
    name: str | None


@dataclass(frozen=True)
class CallSite:
    """One call inside a function body, pre-digested for resolution.

    ``base`` is ``""`` for bare calls (``foo(...)``), ``"self"`` /
    ``"cls"`` for method self-calls, and otherwise the unparsed text of
    the attribute base (``"os"``, ``"Journal"``, ``"self._journal"``).
    """

    name: str
    base: str
    line: int
    args: tuple[CallArg, ...] = ()


@dataclass(frozen=True)
class OpenOp:
    """One builtin ``open(...)`` call with a write-capable mode."""

    line: int
    mode: str
    target: str          # unparsed path expression (locals resolved)
    tmpish: bool         # target smells like a tmp/scratch file


@dataclass(frozen=True)
class FunctionSummary:
    """Picklable effect summary of one function definition."""

    qname: str                       # "f", "Class.meth", "outer.inner"
    name: str                        # last qname segment
    line: int
    is_async: bool
    class_name: str                  # "" for module-level functions
    params: tuple[str, ...]          # positional + kwonly, no self/cls
    calls: tuple[CallSite, ...] = ()
    sub_writes: tuple[tuple[str, int], ...] = ()   # (name, line)
    opens: tuple[OpenOp, ...] = ()
    ungated_obs: tuple[tuple[int, str], ...] = ()  # (line, handle text)

    def param_writes(self) -> tuple[tuple[str, int], ...]:
        """Subscript writes whose target is one of this fn's params."""
        return tuple((n, ln) for n, ln in self.sub_writes
                     if n in self.params)


def blocking_kind(call: CallSite) -> str | None:
    """The blocking-I/O label for *call*, or None when not blocking.

    Textual classification (``import time as t`` defeats it — a
    documented imprecision): ``time.sleep``, ``subprocess.*``,
    ``shutil.*``, ``socket.*`` and the :data:`BLOCKING_OS_NAMES`
    subset of ``os.*``.  Builtin ``open`` is classified separately via
    :class:`OpenOp` (any mode: sync file I/O blocks the loop).
    """
    if call.base == "time" and call.name == "sleep":
        return "time.sleep"
    if call.base in ("subprocess", "shutil", "socket"):
        return f"{call.base}.{call.name}"
    if call.base == "os" and call.name in BLOCKING_OS_NAMES:
        return f"os.{call.name}"
    if call.base == "" and call.name == "open":
        return "open"
    return None


#: Substrings marking a path expression as a scratch/tmp target that
#: is published later via ``os.replace`` (or never published at all).
_TMPISH = ("tmp", "partial", "compact", "scratch")


def _is_tmpish(text: str) -> bool:
    low = text.lower()
    return any(tok in low for tok in _TMPISH)


def _call_args(call: ast.Call) -> tuple[CallArg, ...]:
    out: list[CallArg] = []
    for arg in call.args:
        out.append(CallArg(
            keyword=None,
            name=arg.id if isinstance(arg, ast.Name) else None))
    for kw in call.keywords:
        if kw.arg is None:        # **kwargs — opaque
            continue
        out.append(CallArg(
            keyword=kw.arg,
            name=kw.value.id if isinstance(kw.value, ast.Name) else None))
    return tuple(out)


def _split_call(call: ast.Call) -> tuple[str, str] | None:
    """(base, name) of the called expression, or None when unnameable."""
    func = call.func
    if isinstance(func, ast.Name):
        return "", func.id
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value), func.attr
        except Exception:           # pragma: no cover - defensive
            return None
    return None


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of a builtin ``open`` call ("r" when omitted)."""
    for kw in call.keywords:
        if kw.arg == "mode":
            return const_str(kw.value)
    if len(call.args) >= 2:
        return const_str(call.args[1])
    return "r" if call.args else None


class _FnVisitor:
    """Collects one function's effects, skipping nested defs (each
    nested def gets its own summary; calls are attributed to the
    innermost enclosing function)."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 import_bound: set[str]):
        self.fn = fn
        self.import_bound = import_bound
        self.calls: list[CallSite] = []
        self.sub_writes: list[tuple[str, int]] = []
        self.opens: list[OpenOp] = []
        self.ungated: list[tuple[int, str]] = []
        # Simple local string assignments, for resolving
        # ``tmp = f"{path}.tmp"; open(tmp, "w")`` at the open site.
        self.locals_text: dict[str, str] = {}

    def run(self) -> None:
        for stmt in self.fn.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return                   # separate summary
        if isinstance(node, ast.Assign):
            self._record_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._record_sub_target(node.target)
        elif isinstance(node, ast.Call):
            self._record_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _record_assign(self, node: ast.Assign) -> None:
        targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
                continue
            self._record_sub_target(target)
            if isinstance(target, ast.Name):
                try:
                    self.locals_text[target.id] = ast.unparse(node.value)
                except Exception:    # pragma: no cover - defensive
                    pass

    def _record_sub_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            self.sub_writes.append((target.value.id, target.lineno))

    def _record_call(self, call: ast.Call) -> None:
        split = _split_call(call)
        if split is not None:
            base, name = split
            self.calls.append(CallSite(
                name=name, base=base, line=call.lineno,
                args=_call_args(call)))
            # numpy in-place scatter: np.add.at(arr, idx, v) writes arr.
            if name == "at" and call.args \
                    and isinstance(call.args[0], ast.Name):
                self.sub_writes.append(
                    (call.args[0].id, call.lineno))
            if base == "" and name == "open":
                self._record_open(call)
        handle = handle_base(call)
        if handle is not None:
            if isinstance(handle, ast.Name) \
                    and handle.id in self.import_bound:
                return
            if not guards_with_not_none(call, handle):
                self.ungated.append(
                    (call.lineno, ast.unparse(handle)))

    def _record_open(self, call: ast.Call) -> None:
        mode = _open_mode(call)
        if mode is None or not call.args:
            return
        arg = call.args[0]
        try:
            target = ast.unparse(arg)
        except Exception:            # pragma: no cover - defensive
            return
        resolved = target
        if isinstance(arg, ast.Name) and arg.id in self.locals_text:
            resolved = self.locals_text[arg.id]
        self.opens.append(OpenOp(
            line=call.lineno, mode=mode, target=target,
            tmpish=_is_tmpish(target) or _is_tmpish(resolved)))


@dataclass
class _Scope:
    prefix: str
    class_name: str


def extract_functions(tree: ast.Module,
                      import_bound: set[str]) -> dict[str, FunctionSummary]:
    """All function summaries of a module, keyed by qualified name."""
    out: dict[str, FunctionSummary] = {}

    def walk(body: list[ast.stmt], scope: _Scope) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{scope.prefix}{node.name}"
                params = tuple(
                    a.arg for a in (node.args.posonlyargs + node.args.args
                                    + node.args.kwonlyargs)
                    if a.arg not in ("self", "cls"))
                visitor = _FnVisitor(node, import_bound)
                visitor.run()
                summary = FunctionSummary(
                    qname=qname, name=node.name, line=node.lineno,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_name=scope.class_name, params=params,
                    calls=tuple(visitor.calls),
                    sub_writes=tuple(visitor.sub_writes),
                    opens=tuple(visitor.opens),
                    ungated_obs=tuple(visitor.ungated))
                if qname not in out:     # first def wins (overloads)
                    out[qname] = summary
                walk(node.body, _Scope(prefix=f"{qname}.",
                                       class_name=scope.class_name))
            elif isinstance(node, ast.ClassDef):
                walk(node.body, _Scope(prefix=f"{scope.prefix}{node.name}.",
                                       class_name=node.name))
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        walk([sub], scope)
    walk(tree.body, _Scope(prefix="", class_name=""))
    return out
