"""Finding and severity types for the :mod:`repro.lint` rule engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import sha256_hex

__all__ = ["SEV_ERROR", "SEV_WARNING", "SEVERITIES", "ChainHop",
           "Finding", "render_chain"]

#: A finding that fails ``repro lint`` (exit 1) unless suppressed inline
#: or grandfathered in the committed baseline.
SEV_ERROR = "error"
#: Reported but never fails the run (style-level and heuristic rules).
SEV_WARNING = "warning"

SEVERITIES = (SEV_ERROR, SEV_WARNING)


@dataclass(frozen=True)
class ChainHop:
    """One hop of call-chain evidence on a cross-module finding.

    Hops run from the anchor function down to the concrete offending
    site; each is a suppression point — an inline
    ``# repro: ignore[...]`` at any hop's line silences the finding, so
    a protocol exception can be documented at whichever end owns the
    decision (the caller that accepts blocking, or the helper whose
    write is bookkeeping).
    """

    path: str        # repo-root-relative, posix separators
    line: int        # 1-based
    note: str = ""   # human label, e.g. "handle → route" or "os.listdir"


def render_chain(chain: tuple[ChainHop, ...]) -> str:
    """``a → b → c`` evidence text with trailing locations."""
    if not chain:
        return ""
    notes = " → ".join(h.note or f"{h.path}:{h.line}" for h in chain)
    locs = " → ".join(f"{h.path}:{h.line}" for h in chain)
    return f"{notes} [{locs}]"


@dataclass
class Finding:
    """One rule violation at a source location.

    ``fingerprint`` identifies the finding across edits for baseline
    matching: it hashes the rule id, the file path, the *content* of the
    offending line and the occurrence index among identical lines — so
    inserting unrelated lines above does not orphan a baseline entry,
    while editing the offending line itself does (and forces the entry
    to be re-justified).
    """

    rule: str
    path: str          # repo-root-relative, posix separators
    line: int          # 1-based
    message: str
    severity: str = SEV_ERROR
    snippet: str = ""  # stripped source of the offending line
    occurrence: int = 0
    suppressed: bool = False
    suppress_reason: str = ""
    baselined: bool = False
    fingerprint: str = field(default="", compare=False)
    #: Cross-module evidence, anchor-first.  Excluded from the
    #: fingerprint on purpose: the anchor (rule + path + snippet) stays
    #: stable when a *callee* moves between files, so baselines survive
    #: refactors of helpers.
    chain: tuple[ChainHop, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def compute_fingerprint(self) -> str:
        """Stable identity: rule + path + line content + occurrence."""
        key = f"{self.rule}\x00{self.path}\x00{self.snippet}" \
              f"\x00{self.occurrence}"
        self.fingerprint = sha256_hex(key)[:16]
        return self.fingerprint

    def location(self) -> str:
        """``path:line`` as editors expect it."""
        return f"{self.path}:{self.line}"

    def format(self) -> str:
        """One human-readable report line."""
        return (f"{self.path}:{self.line}: [{self.severity}] "
                f"{self.rule}: {self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (``--json`` output, baseline files)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "chain": [{"path": h.path, "line": h.line, "note": h.note}
                      for h in self.chain],
        }
