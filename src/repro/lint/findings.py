"""Finding and severity types for the :mod:`repro.lint` rule engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import sha256_hex

__all__ = ["SEV_ERROR", "SEV_WARNING", "SEVERITIES", "Finding"]

#: A finding that fails ``repro lint`` (exit 1) unless suppressed inline
#: or grandfathered in the committed baseline.
SEV_ERROR = "error"
#: Reported but never fails the run (style-level and heuristic rules).
SEV_WARNING = "warning"

SEVERITIES = (SEV_ERROR, SEV_WARNING)


@dataclass
class Finding:
    """One rule violation at a source location.

    ``fingerprint`` identifies the finding across edits for baseline
    matching: it hashes the rule id, the file path, the *content* of the
    offending line and the occurrence index among identical lines — so
    inserting unrelated lines above does not orphan a baseline entry,
    while editing the offending line itself does (and forces the entry
    to be re-justified).
    """

    rule: str
    path: str          # repo-root-relative, posix separators
    line: int          # 1-based
    message: str
    severity: str = SEV_ERROR
    snippet: str = ""  # stripped source of the offending line
    occurrence: int = 0
    suppressed: bool = False
    suppress_reason: str = ""
    baselined: bool = False
    fingerprint: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def compute_fingerprint(self) -> str:
        """Stable identity: rule + path + line content + occurrence."""
        key = f"{self.rule}\x00{self.path}\x00{self.snippet}" \
              f"\x00{self.occurrence}"
        self.fingerprint = sha256_hex(key)[:16]
        return self.fingerprint

    def location(self) -> str:
        """``path:line`` as editors expect it."""
        return f"{self.path}:{self.line}"

    def format(self) -> str:
        """One human-readable report line."""
        return (f"{self.path}:{self.line}: [{self.severity}] "
                f"{self.rule}: {self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (``--json`` output, baseline files)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
