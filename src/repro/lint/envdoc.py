"""Generate ``ENV.md`` from the lint engine's env-var registry.

The ``env-raw-read`` rule records every ``env_*`` parser call it sees
(variable name, parser, default expression, call site), so the lint run
already holds the project's complete environment surface.  This module
renders it as a deterministic markdown table; ``repro lint
--write-env-md ENV.md`` regenerates the file and the
``env-undocumented`` rule fails the lint whenever the two drift.
"""

from __future__ import annotations

__all__ = ["render_env_md"]

_HEADER = """\
# Environment variables

All `REPRO_*` configuration is read through the validated parsers in
`repro._util` (`env_int`, `env_float`, `env_bool`, `env_str`,
`env_csv`): malformed values raise `ValueError` naming the variable
instead of being silently coerced.  This file is **generated** from
those call sites by the static analyzer — regenerate with:

```sh
PYTHONPATH=src python -m repro.experiments.cli lint --write-env-md ENV.md
```

`repro lint` fails if a variable is read in code but missing here.

| Variable | Parser | Default | Consuming module(s) |
|----------|--------|---------|---------------------|
"""


def render_env_md(registry: dict[str, dict[str, list[str]]]) -> str:
    """Markdown document for the merged env registry.

    *registry* is :meth:`repro.lint.registry.Project.env_registry`
    output: per-variable parser set, default expressions, and consumer
    paths, already deterministically ordered.
    """
    rows = []
    for name in sorted(registry):
        info = registry[name]
        parsers = ", ".join(f"`{p}`" for p in info["parsers"]
                            if p not in ("raw", "write"))
        defaults = ", ".join(f"`{d}`" for d in info["defaults"] if d) \
            or "`None`"
        consumers = ", ".join(f"`{c}`" for c in info["consumers"])
        rows.append(f"| `{name}` | {parsers or '`raw`'} | {defaults} "
                    f"| {consumers} |")
    return _HEADER + "\n".join(rows) + "\n"
