"""repro.lint — AST-level invariant checker for the simulator core.

Static counterpart to the dynamic :mod:`repro.check` layer: where the
happens-before checker audits one execution, ``repro lint`` audits the
*source* for invariants every execution must satisfy — determinism
(no wall clock or unseeded RNG in simulated code), environment hygiene
(all ``REPRO_*`` reads through :mod:`repro._util` parsers, documented
in ``ENV.md``), observer gating (hook calls behind a single null
check), kernel footprint completeness (subscript writes covered by the
declared :class:`~repro.kernels.base.AccessSet`), and lock/barrier
pairing in the time-reservation sync model.

Entry points: ``repro lint`` on the command line, or
:func:`repro.lint.engine.lint_paths` programmatically.
"""

from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.registry import all_rules, rule_ids

__all__ = ["LintResult", "lint_paths", "Finding", "SEV_ERROR",
           "SEV_WARNING", "all_rules", "rule_ids"]
