"""Shared AST helpers for the lint rules.

Everything here is pure analysis over a parsed module: parent links,
structural expression equality, import tracking, and the null-check
guard detection the observer-gating rule is built on.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["add_parents", "parent", "ancestors", "same_expr",
           "import_bound_names", "walk_calls", "is_none_check",
           "guards_with_not_none", "call_name", "const_str",
           "HANDLE_NAMES", "handle_base"]

#: Attribute/variable names that hold an observer or checker handle
#: (None when no instrument is installed) — the observer-gating idiom.
HANDLE_NAMES = ("trace", "_trace", "check", "_check", "tracer")

_PARENT = "_repro_lint_parent"


def add_parents(tree: ast.AST) -> None:
    """Attach a parent pointer to every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def parent(node: ast.AST) -> ast.AST | None:
    """The parent node, or None for the module root."""
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Yield ``(ancestor, child_on_path)`` pairs from *node* to the root.

    ``child_on_path`` is the node through which the chain reached the
    ancestor — what an If-guard check needs to know which branch the
    original node sits in.
    """
    child: ast.AST = node
    up = parent(node)
    while up is not None:
        yield up, child
        child = up
        up = parent(up)


def same_expr(a: ast.AST, b: ast.AST) -> bool:
    """Structural equality of two expressions (ignores positions)."""
    return ast.dump(a) == ast.dump(b)


def import_bound_names(tree: ast.Module) -> set[str]:
    """Names bound at module level by ``import`` / ``from ... import``.

    Rules use this to tell a module alias (``from repro.check import
    checker as _check``) apart from a same-named instance handle.
    """
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
    return bound


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All Call nodes in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def call_name(call: ast.Call) -> str | None:
    """The called name: ``foo(...)`` → "foo", ``a.b.foo(...)`` → "foo"."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def handle_base(call: ast.Call) -> ast.expr | None:
    """The observer/checker handle a hook call goes through, if any.

    ``ctx.trace.span(...)`` → ``ctx.trace``; ``self._check.on_rmw(...)``
    → ``self._check``; ``engine.check.on_barrier(...)`` →
    ``engine.check``.  Plain names (``trace.end(...)``) match too.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name) and base.id in HANDLE_NAMES:
        return base
    if isinstance(base, ast.Attribute) and base.attr in HANDLE_NAMES:
        return base
    return None


def const_str(node: ast.expr | None) -> str | None:
    """The literal value of a string constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def is_none_check(test: ast.expr, expr: ast.AST,
                  negated: bool) -> bool:
    """Whether *test* contains ``expr is not None`` (or ``is None`` when
    *negated*), possibly as one clause of an ``and`` chain."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(is_none_check(v, expr, negated) for v in test.values)
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    op = test.ops[0]
    wanted: type[ast.cmpop] = ast.Is if negated else ast.IsNot
    if not isinstance(op, wanted):
        return False
    comparator = test.comparators[0]
    if not (isinstance(comparator, ast.Constant)
            and comparator.value is None):
        return False
    return same_expr(test.left, expr)


def _early_exit(body: list[ast.stmt]) -> bool:
    """Whether a guard body unconditionally leaves the enclosing scope."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


def guards_with_not_none(node: ast.AST, expr: ast.AST) -> bool:
    """Whether *node* executes only when ``expr is not None``.

    Two accepted shapes (the codebase's single-null-check idiom):

    * the node sits in the body of ``if expr is not None: ...`` (also as
      a clause of an ``and``), at any ancestor depth;
    * an earlier statement of the enclosing function is
      ``if expr is None: return/raise/continue/break``.
    """
    for up, child in ancestors(node):
        if isinstance(up, ast.If) and child in up.body \
                and is_none_check(up.test, expr, negated=False):
            return True
        if isinstance(up, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node_line = getattr(node, "lineno", 0)
            for stmt in up.body:
                if stmt.lineno >= node_line:
                    break
                if isinstance(stmt, ast.If) \
                        and is_none_check(stmt.test, expr, negated=True) \
                        and _early_exit(stmt.body):
                    return True
            return False
    return False
