"""``repro lint`` — drive the AST invariant checker from the shell.

Exit status is 1 only when *new* error-severity findings exist (not
suppressed inline, not in the baseline); warnings and grandfathered
findings print but never fail the run, so the gate is strict without
blocking incremental cleanup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro._util import atomic_write_text, canonical_json
from repro.lint import baseline as baseline_mod
from repro.lint import formats as formats_mod
from repro.lint.engine import LintResult, lint_paths, rule_table
from repro.lint.envdoc import render_env_md

__all__ = ["main", "find_root", "default_paths"]

#: Directories linted when no paths are given, relative to the root.
#: benchmarks/ and examples/ drive the public API and are held to the
#: same invariants as the package itself (missing ones are skipped).
DEFAULT_DIRS = (os.path.join("src", "repro"), "benchmarks", "examples")


def default_paths(root: str) -> list[str]:
    """The default lint targets that exist under *root*."""
    out = [os.path.join(root, d) for d in DEFAULT_DIRS]
    return [p for p in out if os.path.isdir(p)]


def find_root(start: str | None = None) -> str:
    """Nearest ancestor of *start* (default cwd) holding pyproject.toml."""
    cur = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.exists(os.path.join(cur, "pyproject.toml")):
            return cur
        parent = os.path.dirname(cur)
        if parent == cur:
            return os.path.abspath(start or os.getcwd())
        cur = parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-level invariant checker: determinism, env "
                    "hygiene, observer gating, kernel footprints, "
                    "lock/barrier pairing.")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "<root>/src/repro, benchmarks, examples)")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=formats_mod.FORMATS,
                        help="report style: text (human), github "
                             "(Actions annotations), sarif (2.1.0 "
                             "document on stdout)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="phase-1 worker processes (default: "
                             "REPRO_LINT_JOBS, else min(8, cpus); "
                             "output is identical for any value)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: walk up to "
                             "pyproject.toml)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write the full machine-readable report "
                             "('-' for stdout)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: "
                             "<root>/lint_baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record current new findings into the "
                             "baseline (requires --reason)")
    parser.add_argument("--reason", default="",
                        help="written rationale stored with "
                             "--update-baseline entries")
    parser.add_argument("--env-registry", default=None, metavar="PATH",
                        help="write the env-var registry as JSON "
                             "('-' for stdout)")
    parser.add_argument("--write-env-md", default=None, metavar="PATH",
                        help="regenerate the ENV.md table and exit")
    parser.add_argument("--env-doc", default=None, metavar="PATH",
                        help="ENV.md checked by env-undocumented "
                             "(default: <root>/ENV.md; 'none' disables)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print the summary line")
    return parser


def _print_report(result: LintResult, elapsed: float,
                  quiet: bool) -> None:
    if not quiet:
        for finding in result.findings:
            print(finding.format())
        if result.stale_baseline:
            for entry in result.stale_baseline:
                print(f"note: baseline entry {entry.fingerprint} "
                      f"({entry.rule} in {entry.path}) no longer "
                      "matches; prune it with --update-baseline")
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    print(f"repro lint: {result.files_checked} files, "
          f"{n_err} error(s), {n_warn} warning(s), "
          f"{len(result.suppressed)} suppressed, "
          f"{len(result.baselined)} baselined "
          f"[{elapsed:.2f}s]")


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None)
    if args.list_rules:
        print(rule_table())
        return 0

    root = os.path.abspath(args.root) if args.root else find_root()
    paths = [os.path.abspath(p) for p in args.paths] \
        or default_paths(root)

    baseline_path: str | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = os.path.abspath(args.baseline)
    else:
        baseline_path = os.path.join(root, baseline_mod.BASELINE_NAME)

    env_doc: str | None
    if args.env_doc == "none":
        env_doc = None
    elif args.env_doc is not None:
        env_doc = os.path.abspath(args.env_doc)
    else:
        env_doc = os.path.join(root, "ENV.md")
    if args.write_env_md is not None:
        # Regeneration must not fail on the staleness it is fixing.
        env_doc = None

    start = time.perf_counter()
    result = lint_paths(paths, root=root, baseline_path=baseline_path,
                        env_doc_path=env_doc, jobs=args.jobs)
    elapsed = time.perf_counter() - start

    if args.write_env_md is not None:
        atomic_write_text(args.write_env_md,
                          render_env_md(result.env_registry))
        print(f"wrote {args.write_env_md} "
              f"({len(result.env_registry)} variables)")
        return 0

    if args.env_registry is not None:
        payload = canonical_json(result.env_registry) + "\n"
        if args.env_registry == "-":
            sys.stdout.write(payload)
        else:
            atomic_write_text(args.env_registry, payload)

    if args.json_path is not None:
        payload = json.dumps(result.to_dict(), indent=2,
                             sort_keys=True) + "\n"
        if args.json_path == "-":
            sys.stdout.write(payload)
        else:
            atomic_write_text(args.json_path, payload)

    if args.update_baseline:
        if not args.reason.strip():
            print("error: --update-baseline requires --reason "
                  "(grandfathering is documentation, not amnesty)",
                  file=sys.stderr)
            return 2
        if baseline_path is None:
            print("error: --update-baseline conflicts with "
                  "--no-baseline", file=sys.stderr)
            return 2
        kept = [e for fp, e in
                sorted(baseline_mod.load_baseline(baseline_path).items())
                if fp not in {s.fingerprint for s in
                              result.stale_baseline}]
        new = baseline_mod.entries_for(result.errors,
                                       args.reason.strip())
        baseline_mod.save_baseline(baseline_path, kept + new)
        print(f"baseline updated: {len(new)} added, "
              f"{len(result.stale_baseline)} pruned, "
              f"{len(kept)} kept")
        return 0

    if args.fmt == "sarif":
        sys.stdout.write(formats_mod.format_sarif(result))
    elif args.fmt == "github":
        sys.stdout.write(formats_mod.format_github(result))
        _print_report(result, elapsed, quiet=True)
    else:
        _print_report(result, elapsed, args.quiet)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
