"""The lint engine: file walking, suppressions, baseline, rule driving.

One :func:`lint_paths` call parses every Python file under the given
paths once, runs each registered rule over the modules in its scope,
then runs project-wide finalizers (env-var documentation).  Findings
are filtered through two escape hatches, both requiring a written
rationale:

* inline suppressions — ``# repro: ignore[rule-id] <reason>`` on the
  offending line, or in a comment line directly above it;
* the committed baseline file (see :mod:`repro.lint.baseline`) for
  grandfathered findings, matched by content fingerprint.

A suppression without a reason, or naming an unknown rule, is itself a
finding (``lint-bad-suppression``); a suppression that matches nothing
is reported as ``lint-unused-suppression`` so dead annotations cannot
accumulate.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.astutil import add_parents, import_bound_names
from repro.lint.baseline import BaselineEntry, load_baseline
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.registry import (FINALIZERS, ModuleContext, Project,
                                 all_rules, declare_rule, rule_ids)

__all__ = ["LintResult", "lint_paths", "iter_python_files"]

#: Syntax: "repro: ignore" + [<rule-id>,...] + reason, in a comment.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$")

declare_rule("lint-bad-suppression", SEV_ERROR,
             "an inline suppression must name a known rule id and carry "
             "a written rationale")
declare_rule("lint-unused-suppression", SEV_WARNING,
             "an inline suppression that matches no finding is dead "
             "annotation; delete it or fix the rule id")


@dataclass
class Suppression:
    """One parsed inline suppression annotation."""

    rules: tuple[str, ...]
    reason: str
    comment_line: int   # where the annotation itself lives
    target_line: int    # the code line it applies to
    used: bool = False


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)   # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    env_registry: dict[str, dict[str, list[str]]] = \
        field(default_factory=dict)
    files_checked: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        """New findings that fail the run."""
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def ok(self) -> bool:
        """Exit-0 condition: no new error-severity findings."""
        return not self.errors

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary (the ``--json`` payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "env_registry": self.env_registry,
        }


def iter_python_files(paths: list[str]) -> list[str]:
    """Sorted ``.py`` files under *paths* (files accepted verbatim)."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def _comment_lines(source: str) -> dict[int, str]:
    """1-based line → comment text, via the tokenizer.

    Tokenizing (rather than regex over raw lines) keeps doc examples of
    the suppression syntax inside strings from parsing as suppressions.
    """
    out: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except tokenize.TokenError:
        pass
    return out


def _parse_suppressions(source: str, lines: list[str],
                        known: set[str]) -> tuple[list[Suppression],
                                                  list[Finding]]:
    """Extract suppressions; malformed ones become findings directly.

    A suppression on a code line covers that line.  One on a
    comment-only line covers the next non-comment line, so multi-line
    rationales above the offending statement work naturally.
    """
    sups: list[Suppression] = []
    bad: list[Finding] = []
    comments = _comment_lines(source)
    for i in sorted(comments):
        raw = lines[i - 1]
        m = _SUPPRESS_RE.search(comments[i])
        if m is None:
            continue
        ids = tuple(tok.strip() for tok in m.group(1).split(",")
                    if tok.strip())
        reason = m.group(2).strip()
        unknown = [r for r in ids if r not in known]
        if unknown or not ids:
            bad.append(Finding(
                rule="lint-bad-suppression", path="", line=i,
                message=f"suppression names unknown rule(s) "
                        f"{unknown or '[]'}; valid ids: repro lint "
                        "--list-rules", snippet=raw.strip()))
            continue
        target = i
        if raw.lstrip().startswith("#"):
            # Comment-only annotation: applies to the next code line
            # (skipping the rest of the comment block).
            j = i
            while j < len(lines) and lines[j].lstrip().startswith("#"):
                j += 1
            target = j + 1 if j < len(lines) else i
        if not reason:
            bad.append(Finding(
                rule="lint-bad-suppression", path="", line=i,
                message=f"suppression of {', '.join(ids)} has no written "
                        "rationale; annotations document intent, they "
                        "are not mute buttons", snippet=raw.strip()))
            continue
        sups.append(Suppression(rules=ids, reason=reason, comment_line=i,
                                target_line=target))
    return sups, bad


def _relpath(path: str, root: str) -> str:
    """Repo-root-relative posix path (stable across platforms)."""
    try:
        rel = os.path.relpath(path, root)
    except ValueError:           # different drive (Windows)
        rel = path
    return rel.replace(os.sep, "/")


def lint_paths(paths: list[str], root: str,
               baseline_path: str | None = None,
               env_doc_path: str | None = None) -> LintResult:
    """Lint every Python file under *paths*; returns a :class:`LintResult`.

    *root* anchors relative paths (finding locations, baseline
    fingerprints).  *baseline_path* (optional) grandfathers known
    findings; *env_doc_path* (optional) is the ENV.md checked by the
    ``env-undocumented`` rule — pass None to skip that check.
    """
    rules = all_rules()
    known = rule_ids()
    project = Project(root=root, env_doc_path=env_doc_path)
    raw_findings: list[Finding] = []
    suppressions: dict[str, list[Suppression]] = {}
    files = iter_python_files(paths)

    for path in files:
        relpath = _relpath(path, root)
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise ValueError(f"{relpath}: cannot lint: {exc}") from exc
        add_parents(tree)
        lines = source.splitlines()
        ctx = ModuleContext(path=path, relpath=relpath, tree=tree,
                            lines=lines,
                            import_bound=import_bound_names(tree),
                            project=project)
        project.modules.append(ctx)
        sups, bad = _parse_suppressions(source, lines, known)
        for finding in bad:
            finding.path = relpath
        raw_findings.extend(bad)
        suppressions[relpath] = sups
        for spec in rules:
            if spec.check is None or not spec.applies_to(relpath):
                continue
            raw_findings.extend(spec.check(ctx))

    for finalize in FINALIZERS:
        raw_findings.extend(finalize(project))

    # Fill snippets for findings built outside a module context.
    by_rel = {m.relpath: m for m in project.modules}
    for finding in raw_findings:
        if not finding.snippet and finding.path in by_rel:
            finding.snippet = by_rel[finding.path].line_at(finding.line)

    _assign_fingerprints(raw_findings)
    result = LintResult(env_registry=project.env_registry(),
                        files_checked=len(files))

    baseline: dict[str, BaselineEntry] = {}
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
    matched: set[str] = set()

    for finding in sorted(raw_findings,
                          key=lambda f: (f.path, f.line, f.rule)):
        sup = _matching_suppression(suppressions.get(finding.path, []),
                                    finding)
        if sup is not None:
            sup.used = True
            finding.suppressed = True
            finding.suppress_reason = sup.reason
            result.suppressed.append(finding)
            continue
        entry = baseline.get(finding.fingerprint)
        if entry is not None:
            matched.add(finding.fingerprint)
            finding.baselined = True
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    for relpath, sups in sorted(suppressions.items()):
        for sup in sups:
            if not sup.used:
                result.findings.append(Finding(
                    rule="lint-unused-suppression", path=relpath,
                    line=sup.comment_line, severity=SEV_WARNING,
                    message=f"suppression of {', '.join(sup.rules)} "
                            "matches no finding; delete it or fix the "
                            "rule id",
                    snippet=by_rel[relpath].line_at(sup.comment_line)))

    result.stale_baseline = [e for fp, e in sorted(baseline.items())
                             if fp not in matched]
    _assign_fingerprints(result.findings)
    return result


def _matching_suppression(sups: list[Suppression],
                          finding: Finding) -> Suppression | None:
    """The first suppression covering *finding*'s line and rule."""
    for sup in sups:
        if finding.rule in sup.rules \
                and finding.line in (sup.target_line, sup.comment_line):
            return sup
    return None


def _assign_fingerprints(findings: list[Finding]) -> None:
    """Compute stable fingerprints (occurrence-indexed per content key)."""
    seen: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line,
                                                   f.rule)):
        key = (finding.rule, finding.path, finding.snippet)
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1
        finding.compute_fingerprint()


def rule_table() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    rows = []
    for spec in all_rules():
        scope = ", ".join(spec.scope) if spec.scope else "all files"
        rows.append(f"{spec.id:24s} [{spec.severity:7s}] ({scope})\n"
                    f"    {spec.description}")
    return "\n".join(rows)
