"""The lint engine: two-phase whole-program analysis.

**Phase 1** (parallel, cached) turns every Python file under the given
paths into a :class:`~repro.lint.index.FilePayload`: the file is parsed
once, every per-module rule in scope runs over it, inline suppressions
are extracted, and a picklable effect summary (symbols, call sites,
subscript writes, ``open`` sites, ungated observer calls) is built.
Payloads fan out over a process pool (``REPRO_LINT_JOBS``) and are
cached under ``<root>/.repro-lint-cache/`` keyed by source digest plus
a fingerprint of the lint package itself, so warm runs skip parsing
entirely.  Results are merged in sorted path order — output is
byte-identical for any job count.

**Phase 2** (serial) merges payloads into a
:class:`~repro.lint.index.ProjectIndex`, runs the cross-module index
rules (static footprints, crash-safety protocol, asyncio hygiene,
transitive observer gating) over the resolved call graph, then the
project finalizers (env-var documentation).

Findings are filtered through two escape hatches, both requiring a
written rationale:

* inline suppressions — ``# repro: ignore[rule-id] <reason>`` on the
  offending line, or in a comment line directly above it; a
  cross-module finding is additionally suppressible at *any hop* of
  its evidence chain (callers own "I accept blocking here", helpers
  own "this write is bookkeeping");
* the committed baseline file (see :mod:`repro.lint.baseline`) for
  grandfathered findings, matched by content fingerprint.

A suppression without a reason, or naming an unknown rule, is itself a
finding (``lint-bad-suppression``); a suppression that matches nothing
is reported as ``lint-unused-suppression`` so dead annotations cannot
accumulate.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

from repro._util import env_int, env_str
from repro.lint import index as index_mod
from repro.lint.astutil import add_parents, import_bound_names
from repro.lint.baseline import BaselineEntry, load_baseline
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.index import FilePayload, build_index, cache_key, \
    cache_load, cache_store, summarize_module
from repro.lint.registry import (FINALIZERS, INDEX_RULES, ModuleContext,
                                 Project, all_rules, declare_rule,
                                 rule_ids)

__all__ = ["LintResult", "lint_paths", "iter_python_files"]

#: Syntax: "repro: ignore" + [<rule-id>,...] + reason, in a comment.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$")

#: Below this many files a process pool costs more than it saves.
_PARALLEL_THRESHOLD = 16

declare_rule("lint-bad-suppression", SEV_ERROR,
             "an inline suppression must name a known rule id and carry "
             "a written rationale")
declare_rule("lint-unused-suppression", SEV_WARNING,
             "an inline suppression that matches no finding is dead "
             "annotation; delete it or fix the rule id")


@dataclass
class Suppression:
    """One parsed inline suppression annotation."""

    rules: tuple[str, ...]
    reason: str
    comment_line: int   # where the annotation itself lives
    target_line: int    # the code line it applies to
    used: bool = False


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)   # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    env_registry: dict[str, dict[str, list[str]]] = \
        field(default_factory=dict)
    files_checked: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        """New findings that fail the run."""
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def ok(self) -> bool:
        """Exit-0 condition: no new error-severity findings."""
        return not self.errors

    def to_dict(self) -> dict[str, object]:
        """JSON-ready summary (the ``--json`` payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "env_registry": self.env_registry,
        }


def iter_python_files(paths: list[str]) -> list[str]:
    """Sorted ``.py`` files under *paths* (files accepted verbatim)."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def _comment_lines(source: str) -> dict[int, str]:
    """1-based line → comment text, via the tokenizer.

    Tokenizing (rather than regex over raw lines) keeps doc examples of
    the suppression syntax inside strings from parsing as suppressions.
    """
    out: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except tokenize.TokenError:
        pass
    return out


def _parse_suppressions(source: str, lines: list[str],
                        known: set[str]) -> tuple[list[Suppression],
                                                  list[Finding]]:
    """Extract suppressions; malformed ones become findings directly.

    A suppression on a code line covers that line.  One on a
    comment-only line covers the next non-comment line, so multi-line
    rationales above the offending statement work naturally.
    """
    sups: list[Suppression] = []
    bad: list[Finding] = []
    comments = _comment_lines(source)
    for i in sorted(comments):
        raw = lines[i - 1]
        m = _SUPPRESS_RE.search(comments[i])
        if m is None:
            continue
        ids = tuple(tok.strip() for tok in m.group(1).split(",")
                    if tok.strip())
        reason = m.group(2).strip()
        unknown = [r for r in ids if r not in known]
        if unknown or not ids:
            bad.append(Finding(
                rule="lint-bad-suppression", path="", line=i,
                message=f"suppression names unknown rule(s) "
                        f"{unknown or '[]'}; valid ids: repro lint "
                        "--list-rules", snippet=raw.strip()))
            continue
        target = i
        if raw.lstrip().startswith("#"):
            # Comment-only annotation: applies to the next code line
            # (skipping the rest of the comment block).
            j = i
            while j < len(lines) and lines[j].lstrip().startswith("#"):
                j += 1
            target = j + 1 if j < len(lines) else i
        if not reason:
            bad.append(Finding(
                rule="lint-bad-suppression", path="", line=i,
                message=f"suppression of {', '.join(ids)} has no written "
                        "rationale; annotations document intent, they "
                        "are not mute buttons", snippet=raw.strip()))
            continue
        sups.append(Suppression(rules=ids, reason=reason, comment_line=i,
                                target_line=target))
    return sups, bad


def _relpath(path: str, root: str) -> str:
    """Repo-root-relative posix path (stable across platforms)."""
    try:
        rel = os.path.relpath(path, root)
    except ValueError:           # different drive (Windows)
        rel = path
    return rel.replace(os.sep, "/")


# ----- phase 1: per-file analysis ------------------------------------------

def analyze_one(path: str, relpath: str, root: str) -> FilePayload:
    """Parse one file, run per-module rules, build its effect summary.

    Self-contained and picklable in/out — this is the process-pool
    worker (and the unit the payload cache stores).
    """
    rules = all_rules()
    known = rule_ids()
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ValueError(f"{relpath}: cannot lint: {exc}") from exc
    add_parents(tree)
    lines = source.splitlines()
    import_bound = import_bound_names(tree)
    # Throwaway project: per-module rules record env uses onto it; the
    # parent process merges them from the payload.
    scratch = Project(root=root)
    ctx = ModuleContext(path=path, relpath=relpath, tree=tree,
                        lines=lines, import_bound=import_bound,
                        project=scratch)
    findings: list[Finding] = []
    sups, bad = _parse_suppressions(source, lines, known)
    for finding in bad:
        finding.path = relpath
    findings.extend(bad)
    for spec in rules:
        if spec.check is None or not spec.applies_to(relpath):
            continue
        findings.extend(spec.check(ctx))
    return FilePayload(
        relpath=relpath, lines=lines, findings=findings,
        suppressions=sups, env_uses=scratch.env_uses,
        summary=summarize_module(tree, relpath, import_bound))


def _analyze_job(job: tuple[str, str, str]) -> FilePayload:
    """Tuple adapter for :func:`analyze_one` (pool.map target)."""
    return analyze_one(*job)


def _resolve_jobs(jobs: int | None, n_files: int) -> int:
    """Worker count: explicit arg beats REPRO_LINT_JOBS beats auto."""
    if jobs is None:
        jobs = env_int("REPRO_LINT_JOBS", 0, lo=0)
    if jobs in (None, 0):
        jobs = min(8, os.cpu_count() or 1)
    if n_files < _PARALLEL_THRESHOLD:
        return 1
    return max(1, int(jobs))


def _resolve_cache_dir(cache_dir: str | None, root: str) -> str | None:
    """Cache dir: explicit arg beats REPRO_LINT_CACHE beats default;
    the value ``"off"`` disables caching."""
    if cache_dir is None:
        cache_dir = env_str("REPRO_LINT_CACHE")
    if cache_dir is None:
        cache_dir = os.path.join(root, index_mod.CACHE_DIR_NAME)
    if cache_dir.lower() in ("off", "0", "none"):
        return None
    return cache_dir


def _analyze_files(files: list[str], root: str, jobs: int | None,
                   cache_dir: str | None) -> list[FilePayload]:
    """Phase 1 over *files*: cache lookups, then (parallel) analysis."""
    cache_dir = _resolve_cache_dir(cache_dir, root)
    payloads: dict[str, FilePayload] = {}
    pending: list[tuple[str, str, str]] = []
    keys: dict[str, str] = {}
    for path in files:
        relpath = _relpath(path, root)
        with open(path, "rb") as fh:
            key = cache_key(fh.read())
        keys[relpath] = key
        cached = cache_load(cache_dir, relpath, key)
        if cached is not None:
            payloads[relpath] = cached
        else:
            pending.append((path, relpath, root))

    n_jobs = _resolve_jobs(jobs, len(pending))
    if n_jobs <= 1 or len(pending) < 2:
        fresh = [_analyze_job(job) for job in pending]
    else:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            fresh = list(pool.map(_analyze_job, pending, chunksize=4))
    for payload in fresh:
        payloads[payload.relpath] = payload
        cache_store(cache_dir, payload.relpath, keys[payload.relpath],
                    payload)
    return [payloads[rel] for rel in sorted(payloads)]


# ----- the driver ----------------------------------------------------------

def lint_paths(paths: list[str], root: str,
               baseline_path: str | None = None,
               env_doc_path: str | None = None,
               jobs: int | None = None,
               cache_dir: str | None = None) -> LintResult:
    """Lint every Python file under *paths*; returns a :class:`LintResult`.

    *root* anchors relative paths (finding locations, baseline
    fingerprints) and the payload cache.  *baseline_path* (optional)
    grandfathers known findings; *env_doc_path* (optional) is the
    ENV.md checked by the ``env-undocumented`` rule — pass None to skip
    that check.  *jobs*/*cache_dir* override ``REPRO_LINT_JOBS`` /
    ``REPRO_LINT_CACHE``; results are byte-identical for any job count.
    """
    # Rule registration is an import side effect of all_rules(); force
    # it here — on a fully-warm cache no analyze_one() runs in this
    # process, and phase 2 would otherwise see empty INDEX_RULES.
    all_rules()
    files = iter_python_files(paths)
    payloads = _analyze_files(files, root, jobs, cache_dir)

    project = Project(root=root, env_doc_path=env_doc_path)
    raw_findings: list[Finding] = []
    suppressions: dict[str, list[Suppression]] = {}
    by_rel: dict[str, FilePayload] = {}
    for payload in payloads:
        by_rel[payload.relpath] = payload
        project.modules.append(payload)
        raw_findings.extend(payload.findings)
        suppressions[payload.relpath] = payload.suppressions
        project.env_uses.extend(payload.env_uses)

    # Phase 2: whole-program rules over the merged index, then the
    # classic finalizers.
    index = build_index(payloads)
    project.index = index
    for check in INDEX_RULES:
        raw_findings.extend(check(index, project))
    for finalize in FINALIZERS:
        raw_findings.extend(finalize(project))

    # Fill snippets for findings built outside a module context.
    for finding in raw_findings:
        if not finding.snippet and finding.path in by_rel:
            finding.snippet = by_rel[finding.path].line_at(finding.line)

    _assign_fingerprints(raw_findings)
    result = LintResult(env_registry=project.env_registry(),
                        files_checked=len(files))

    baseline: dict[str, BaselineEntry] = {}
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
    matched: set[str] = set()

    for finding in sorted(raw_findings,
                          key=lambda f: (f.path, f.line, f.rule)):
        sup = _matching_suppression(suppressions, finding)
        if sup is not None:
            sup.used = True
            finding.suppressed = True
            finding.suppress_reason = sup.reason
            result.suppressed.append(finding)
            continue
        entry = baseline.get(finding.fingerprint)
        if entry is not None:
            matched.add(finding.fingerprint)
            finding.baselined = True
            result.baselined.append(finding)
            continue
        result.findings.append(finding)

    for relpath, sups in sorted(suppressions.items()):
        for sup in sups:
            if not sup.used:
                result.findings.append(Finding(
                    rule="lint-unused-suppression", path=relpath,
                    line=sup.comment_line, severity=SEV_WARNING,
                    message=f"suppression of {', '.join(sup.rules)} "
                            "matches no finding; delete it or fix the "
                            "rule id",
                    snippet=by_rel[relpath].line_at(sup.comment_line)))

    result.stale_baseline = [e for fp, e in sorted(baseline.items())
                             if fp not in matched]
    _assign_fingerprints(result.findings)
    return result


def _matching_suppression(
        suppressions: dict[str, list[Suppression]],
        finding: Finding) -> Suppression | None:
    """The first suppression covering *finding* — at its anchor line or
    at any hop of its evidence chain (either end, or any hop between,
    of a cross-module call chain is a legitimate place to document the
    exception)."""
    sites = [(finding.path, finding.line)]
    sites.extend((hop.path, hop.line) for hop in finding.chain)
    for path, line in sites:
        for sup in suppressions.get(path, []):
            if finding.rule in sup.rules \
                    and line in (sup.target_line, sup.comment_line):
                return sup
    return None


def _assign_fingerprints(findings: list[Finding]) -> None:
    """Compute stable fingerprints (occurrence-indexed per content key)."""
    seen: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line,
                                                   f.rule)):
        key = (finding.rule, finding.path, finding.snippet)
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1
        finding.compute_fingerprint()


def rule_table() -> str:
    """Human-readable rule listing for ``--list-rules``."""
    rows = []
    for spec in all_rules():
        scope = ", ".join(spec.scope) if spec.scope else "all files"
        rows.append(f"{spec.id:24s} [{spec.severity:7s}] ({scope})\n"
                    f"    {spec.description}")
    return "\n".join(rows)
