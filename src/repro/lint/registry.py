"""Rule registry and per-module context for :mod:`repro.lint`.

A rule is a function from a :class:`ModuleContext` to an iterator of
:class:`~repro.lint.findings.Finding`; registering it is declarative::

    @rule("det-wallclock", SEV_ERROR, scope=SIM_SCOPE,
          description="wall-clock reads make simulated results "
                      "machine-dependent")
    def check_wallclock(ctx: ModuleContext) -> Iterator[Finding]:
        ...

Project-wide rules (cross-module state, e.g. the env-var registry vs
``ENV.md``) additionally register a finalizer with :func:`finalizer`,
which runs once after every module has been visited.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lint.findings import SEVERITIES, Finding

if TYPE_CHECKING:                    # circular-import-free annotations
    from repro.lint.index import FilePayload, ProjectIndex

__all__ = ["ModuleContext", "Project", "EnvUse", "Rule", "rule",
           "finalizer", "index_rule", "all_rules", "rule_ids",
           "SIM_SCOPE", "KERNEL_SCOPE", "ALL_SCOPE"]

#: The deterministic core: everything that executes inside a simulated
#: run, where wall-clock reads or unseeded RNG would break byte-stable
#: replay (DESIGN.md).
SIM_SCOPE = ("repro/sim/", "repro/machine/", "repro/runtime/",
             "repro/kernels/")
#: Kernel code only (footprint rules reason about AccessSet usage).
KERNEL_SCOPE = ("repro/kernels/",)
#: No path restriction.
ALL_SCOPE: tuple[str, ...] = ()


@dataclass
class EnvUse:
    """One environment-variable read site, as seen by the env rules."""

    name: str        # e.g. "REPRO_FAST"
    parser: str      # _util helper used, or "raw" for a direct read
    default: str     # unparsed default expression, "" if none
    path: str        # repo-relative module path
    line: int


@dataclass
class Project:
    """Cross-module state shared by one lint run."""

    root: str
    env_doc_path: str | None = None
    env_uses: list[EnvUse] = field(default_factory=list)
    modules: list["FilePayload"] = field(default_factory=list)
    #: The whole-program view (:class:`repro.lint.index.ProjectIndex`),
    #: populated by the engine before index rules and finalizers run.
    index: "ProjectIndex | None" = None

    def env_registry(self) -> dict[str, dict[str, list[str]]]:
        """The machine-readable env-var registry: one entry per variable,
        merged across read sites, deterministically ordered."""
        out: dict[str, dict[str, list[str]]] = {}
        for use in sorted(self.env_uses,
                          key=lambda u: (u.name, u.path, u.line)):
            entry = out.setdefault(use.name, {
                "parsers": [], "defaults": [], "consumers": [],
                "setters": []})
            if use.parser == "write":
                # `os.environ[X] = ...` pins the variable for child
                # code; it is a setter, not a consumer.
                if use.path not in entry["setters"]:
                    entry["setters"].append(use.path)
                continue
            if use.parser not in entry["parsers"]:
                entry["parsers"].append(use.parser)
            if use.default and use.default not in entry["defaults"]:
                entry["defaults"].append(use.default)
            if use.path not in entry["consumers"]:
                entry["consumers"].append(use.path)
        return out


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: str              # absolute
    relpath: str           # repo-root-relative, posix separators
    tree: ast.Module
    lines: list[str]       # raw source lines (1-based via line_at)
    import_bound: set[str]
    project: Project

    def line_at(self, lineno: int) -> str:
        """Stripped source text of 1-based line *lineno*."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST | int, message: str,
                severity: str | None = None) -> Finding:
        """Build a Finding for *node* (an AST node or a line number)."""
        line = node if isinstance(node, int) \
            else int(getattr(node, "lineno", 0))
        spec = RULES[rule_id]
        return Finding(rule=rule_id, path=self.relpath, line=line,
                       message=message,
                       severity=severity or spec.severity,
                       snippet=self.line_at(line))


CheckFn = Callable[[ModuleContext], Iterator[Finding]]
FinalizeFn = Callable[[Project], Iterator[Finding]]
#: Cross-module rule: runs once over (ProjectIndex, Project).
IndexRuleFn = Callable[["ProjectIndex", Project], Iterator[Finding]]


@dataclass
class Rule:
    """One registered rule: id, default severity, scope, and checker."""

    id: str
    severity: str
    description: str
    scope: tuple[str, ...]
    check: CheckFn | None = None

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at *relpath*."""
        if not self.scope:
            return True
        return any(fragment in relpath for fragment in self.scope)


RULES: dict[str, Rule] = {}
FINALIZERS: list[FinalizeFn] = []
INDEX_RULES: list[IndexRuleFn] = []


def rule(rule_id: str, severity: str, description: str,
         scope: Iterable[str] = ALL_SCOPE) -> Callable[[CheckFn], CheckFn]:
    """Register a per-module rule function under *rule_id*."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r} for {rule_id}")

    def register(fn: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = Rule(id=rule_id, severity=severity,
                              description=description,
                              scope=tuple(scope), check=fn)
        return fn
    return register


def declare_rule(rule_id: str, severity: str, description: str) -> None:
    """Register a rule id that only fires from a finalizer."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULES[rule_id] = Rule(id=rule_id, severity=severity,
                          description=description, scope=ALL_SCOPE)


def finalizer(fn: FinalizeFn) -> FinalizeFn:
    """Register a project-wide pass that runs after all modules."""
    FINALIZERS.append(fn)
    return fn


def index_rule(fn: IndexRuleFn) -> IndexRuleFn:
    """Register a whole-program rule over the merged project index.

    Index rules run in the parent process after every per-file payload
    has been merged (phase 2); the finding ids they emit must have been
    declared with :func:`declare_rule`.
    """
    INDEX_RULES.append(fn)
    return fn


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (imports rule modules)."""
    _load()
    return sorted(RULES.values(), key=lambda r: r.id)


def rule_ids() -> set[str]:
    """The set of valid rule ids (imports rule modules)."""
    _load()
    return set(RULES)


def _load() -> None:
    """Import the rule modules (registration is an import side effect)."""
    from repro.lint import rules  # noqa: F401  (registers on import)
