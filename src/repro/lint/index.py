"""The project-wide index behind :mod:`repro.lint` phase 2.

Phase 1 turns every source file into a picklable :class:`FilePayload`
(per-module findings + suppressions + env uses + a
:class:`ModuleSummary` of symbols and per-function effects).  Payload
construction is embarrassingly parallel — the engine fans it out over a
process pool — and cacheable: payloads are pickled under
``<root>/.repro-lint-cache/`` keyed by the source digest plus a
fingerprint of the lint package itself, so a warm run re-parses only
files whose content (or whose analyzer) changed.

Phase 2 merges the payloads into a :class:`ProjectIndex` — module
table, class table, declared AccessSet footprints — over which
:mod:`repro.lint.callgraph` resolves an approximate call graph and the
cross-module rule families run.
"""

from __future__ import annotations

import ast
import os
import pickle
from dataclasses import dataclass, field

from repro._util import sha256_hex
from repro.lint.effects import FunctionSummary, extract_functions

__all__ = ["ClassSummary", "ModuleSummary", "FilePayload", "ProjectIndex",
           "summarize_module", "build_index", "module_name_for",
           "lint_code_fingerprint", "cache_load", "cache_store",
           "CACHE_DIR_NAME"]

CACHE_DIR_NAME = ".repro-lint-cache"


@dataclass(frozen=True)
class ClassSummary:
    """One class definition: its base-class texts and method names."""

    name: str
    bases: tuple[str, ...]           # unparsed base expressions
    methods: tuple[str, ...]         # method qnames ("Cls.meth")


@dataclass
class ModuleSummary:
    """Symbol table + effect summaries of one module."""

    relpath: str
    module: str                      # dotted name ("repro.serve.http")
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    declared_writes: frozenset[str] = frozenset()
    declared_reads: frozenset[str] = frozenset()
    uses_access_sets: bool = False


@dataclass
class FilePayload:
    """Everything phase 1 produces for one file (picklable)."""

    relpath: str
    lines: list[str]
    findings: list = field(default_factory=list)       # Finding
    suppressions: list = field(default_factory=list)   # Suppression
    env_uses: list = field(default_factory=list)       # EnvUse
    summary: ModuleSummary | None = None

    def line_at(self, lineno: int) -> str:
        """Stripped source text of 1-based line *lineno*."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/serve/http.py`` → ``repro.serve.http``;
    ``repro/kernels/x.py`` (test fixtures) → ``repro.kernels.x``;
    ``__init__`` collapses onto the package.
    """
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[:-3]
    parts = [p for p in path.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _import_map(tree: ast.Module, module: str) -> dict[str, str]:
    """Local alias → fully dotted target for module-level imports.

    ``import os`` → ``{"os": "os"}``; ``from repro.campaign.journal
    import Journal`` → ``{"Journal": "repro.campaign.journal.Journal"}``;
    relative imports resolve against *module*'s package.
    """
    out: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                out.setdefault(local, target)
                if alias.asname:
                    out[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                # level 1 = current package, 2 = parent, ...
                anchor = parts[:len(parts) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            elif not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def _declared_arrays(tree: ast.Module) -> tuple[frozenset[str],
                                                frozenset[str], bool]:
    """String-literal array names in AccessSet builder chains."""
    from repro.lint.astutil import const_str, walk_calls
    writes: set[str] = set()
    reads: set[str] = set()
    uses = False
    for call in walk_calls(tree):
        func = call.func
        if isinstance(func, ast.Name) and func.id == "AccessSet":
            uses = True
        if not isinstance(func, ast.Attribute) or not call.args:
            continue
        name = const_str(call.args[0])
        if name is None:
            continue
        if func.attr in ("writes", "benign_race"):
            writes.add(name)
        elif func.attr == "reads":
            reads.add(name)
    return frozenset(writes), frozenset(reads), uses


def summarize_module(tree: ast.Module, relpath: str,
                     import_bound: set[str]) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    module = module_name_for(relpath)
    functions = extract_functions(tree, import_bound)
    classes: dict[str, ClassSummary] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = tuple(sorted(
            q for q, fn in functions.items()
            if fn.class_name == node.name
            and q.startswith(f"{node.name}.")))
        bases = []
        for base in node.bases:
            try:
                bases.append(ast.unparse(base))
            except Exception:        # pragma: no cover - defensive
                pass
        classes[node.name] = ClassSummary(
            name=node.name, bases=tuple(bases), methods=methods)
    writes, reads, uses = _declared_arrays(tree)
    return ModuleSummary(
        relpath=relpath, module=module, imports=_import_map(tree, module),
        classes=classes, functions=functions, declared_writes=writes,
        declared_reads=reads, uses_access_sets=uses)


@dataclass
class ProjectIndex:
    """The merged whole-program view phase-2 rules run over."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    by_module_name: dict[str, str] = field(default_factory=dict)

    def function_at(self, key: tuple[str, str]) -> FunctionSummary | None:
        """The summary for ``(relpath, qname)``, or None."""
        mod = self.modules.get(key[0])
        return mod.functions.get(key[1]) if mod else None

    def methods_named(self, name: str) -> list[tuple[str, str]]:
        """Every ``(relpath, qname)`` whose method name is *name*,
        sorted — the unique-name fallback tier of call resolution."""
        out = []
        for relpath in sorted(self.modules):
            mod = self.modules[relpath]
            for qname in sorted(mod.functions):
                fn = mod.functions[qname]
                if fn.name == name and fn.class_name:
                    out.append((relpath, qname))
        return out


def build_index(payloads: list[FilePayload]) -> ProjectIndex:
    """Merge per-file payload summaries into one :class:`ProjectIndex`."""
    index = ProjectIndex()
    for payload in sorted(payloads, key=lambda p: p.relpath):
        if payload.summary is None:
            continue
        index.modules[payload.relpath] = payload.summary
        index.by_module_name.setdefault(payload.summary.module,
                                        payload.relpath)
    return index


# ----- payload cache -------------------------------------------------------

_CODE_FINGERPRINT: str | None = None


def lint_code_fingerprint() -> str:
    """Digest of the lint package source: cache-salt so every analyzer
    change invalidates every cached payload."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is not None:
        return _CODE_FINGERPRINT
    pkg_dir = os.path.dirname(os.path.abspath(__file__))
    chunks: list[bytes] = []
    for dirpath, dirnames, filenames in os.walk(pkg_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            full = os.path.join(dirpath, fn)
            with open(full, "rb") as fh:
                chunks.append(os.path.relpath(full, pkg_dir)
                              .encode("utf-8"))
                chunks.append(fh.read())
    _CODE_FINGERPRINT = sha256_hex(b"\x00".join(chunks))[:16]
    return _CODE_FINGERPRINT


def _cache_path(cache_dir: str, relpath: str) -> str:
    return os.path.join(cache_dir, f"{sha256_hex(relpath)[:24]}.pkl")


def cache_key(source: bytes) -> str:
    """The validity key of a payload: source digest + analyzer digest."""
    return f"{sha256_hex(source)[:24]}:{lint_code_fingerprint()}"


def cache_load(cache_dir: str | None, relpath: str,
               key: str) -> FilePayload | None:
    """The cached payload for *relpath* if it matches *key*, else None."""
    if not cache_dir:
        return None
    try:
        with open(_cache_path(cache_dir, relpath), "rb") as fh:
            stored_key, payload = pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, ValueError,
            AttributeError, ImportError):
        return None
    if stored_key != key or not isinstance(payload, FilePayload):
        return None
    return payload


def cache_store(cache_dir: str | None, relpath: str, key: str,
                payload: FilePayload) -> None:
    """Persist *payload*; failures are silent (cache is best-effort)."""
    if not cache_dir:
        return
    try:
        os.makedirs(cache_dir, exist_ok=True)
        path = _cache_path(cache_dir, relpath)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump((key, payload), fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:                  # pragma: no cover - best-effort
        pass
