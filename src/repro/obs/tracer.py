"""Span/event tracer for the simulated machine (``repro.obs``).

Records *what happened when* during a simulation as begin/end spans and
instant events on named tracks, in a form that exports losslessly to the
Chrome trace-event JSON consumed by Perfetto / ``chrome://tracing``
(:mod:`repro.obs.export`).

Design constraints (DESIGN.md "Observability"):

* **Off by default, null-check cheap.**  Instrumentation sites capture
  the active tracer once at construction time (``active()``) and guard
  every record with ``if tracer is not None`` — an uninstrumented run
  pays one attribute test per *potential* event and nothing else.
* **Purely observational.**  The tracer never feeds back into the
  simulation: enabling it cannot change a single simulated cycle (a
  property the tests assert).
* **Deterministic.**  Timestamps are simulated cycles, events are
  appended in engine delivery order, and the engine is deterministic —
  so two traces of the same configuration are byte-identical.

Each parallel region runs its own :class:`~repro.sim.engine.Engine`
starting at ``t = 0``; the tracer keeps a kernel-global ``offset`` that
:meth:`advance` moves past every finished region (mirroring the fault
injector's kernel-global clock), so spans from consecutive loops line up
on one timeline.

Tracks are addressed as ``(pid, tid)``: *pid* selects a process group
(:data:`PID_THREADS` — one track per simulated software thread,
:data:`PID_RESOURCES` — one track per named resource, :data:`PID_ENGINE`
— region lifecycle and watchdog/deadlock events); *tid* is a software
thread id (int) or a resource name (str, mapped to a stable integer at
export time).
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["Tracer", "active", "install", "uninstall", "tracing",
           "PID_THREADS", "PID_RESOURCES", "PID_ENGINE", "PROCESS_NAMES",
           "SPAN_BUCKETS", "span_bucket"]

#: Process-group ids of the exported trace (one Perfetto process each).
PID_THREADS = 1      # simulated software threads (chunks, waits, TLS, steals)
PID_RESOURCES = 2    # serialised resources (atomics, locks, DRAM banks)
PID_ENGINE = 3       # region lifecycle, watchdog and deadlock events

#: Human-readable names for the process groups (export metadata).
PROCESS_NAMES = {PID_THREADS: "sim-threads",
                 PID_RESOURCES: "resources",
                 PID_ENGINE: "engine"}

#: Canonical ``span label -> subsystem bucket`` mapping.  These bucket
#: names are the shared vocabulary between the two observability layers:
#: the simulated-cycle spans recorded here and the wall-clock attribution
#: in :mod:`repro.bench.profiler` report under the *same* labels, so a
#: hot-spot table and a Perfetto track name the same subsystem.
SPAN_BUCKETS = {
    "barrier-wait": "engine:barrier-wait",
    "cond-wait": "engine:cond-wait",
    "watchdog-timeout": "engine:events",
    "deadlock": "engine:events",
    "killed": "engine:events",
    "chunk": "runtime:chunk",
    "tls-init": "runtime:tls",
    "hang": "runtime:hang",
    "steal": "runtime:steal",
    "rmw": "resources:atomic",
    "lock": "resources:atomic",
    "xfer": "resources:dram",
}


def span_bucket(name: str) -> str:
    """The subsystem bucket of a recorded span label.

    ``loop:<prefix>`` spans (one per parallel region) collapse to
    ``runtime:loop``; unknown labels fall back to ``other:<name>`` so a
    newly instrumented span is visible (and nameable) before it gets a
    canonical bucket here.
    """
    if name.startswith("loop:"):
        return "runtime:loop"
    return SPAN_BUCKETS.get(name, f"other:{name}")


#: The active tracer (None = tracing disabled; the common case).
_ACTIVE: "Tracer | None" = None


def active() -> "Tracer | None":
    """The installed tracer, or None when tracing is off.

    Instrumentation sites call this once per object construction and
    keep the result, so the per-event cost of disabled tracing is a
    single ``is not None`` test.
    """
    return _ACTIVE


def install(tracer: "Tracer") -> None:
    """Make *tracer* the active tracer (fails if one is already active)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already installed")
    if not isinstance(tracer, Tracer):
        raise TypeError(f"expected a Tracer, got {tracer!r}")
    _ACTIVE = tracer


def uninstall() -> None:
    """Deactivate the active tracer (no-op when none is installed)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: "Tracer | None" = None):
    """Context manager: install a (new by default) tracer, yield it."""
    tracer = tracer if tracer is not None else Tracer()
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()


class Tracer:
    """Append-only recorder of spans and instant events.

    Events are stored as plain dicts already shaped like Chrome
    trace-event entries (``name``/``ph``/``ts``/``pid``/``tid`` plus
    optional ``args``); :mod:`repro.obs.export` adds track metadata and
    closes any spans left open by a crashed/deadlocked region.
    """

    def __init__(self):
        self.events: list[dict] = []
        self.offset = 0.0        # kernel-global cycles of finished regions
        self._depth: dict = {}   # (pid, tid) -> currently open span count

    def __len__(self) -> int:
        return len(self.events)

    # ----- clock ------------------------------------------------------------

    def ts(self, now: float) -> float:
        """Kernel-global timestamp for region-local time *now*."""
        return self.offset + now

    def advance(self, span: float) -> None:
        """Move the global clock past a finished region of length *span*."""
        if span < 0:
            raise ValueError(f"span must be >= 0, got {span}")
        self.offset += span

    # ----- recording --------------------------------------------------------

    def begin(self, name: str, pid: int, tid, now: float, **args) -> None:
        """Open a span *name* on track ``(pid, tid)`` at region-local *now*."""
        ev = {"name": name, "ph": "B", "ts": self.offset + now,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self.events.append(ev)
        key = (pid, tid)
        self._depth[key] = self._depth.get(key, 0) + 1

    def end(self, name: str, pid: int, tid, now: float, **args) -> None:
        """Close the innermost open span on track ``(pid, tid)``."""
        ev = {"name": name, "ph": "E", "ts": self.offset + now,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self.events.append(ev)
        key = (pid, tid)
        self._depth[key] = self._depth.get(key, 0) - 1

    def span(self, name: str, pid: int, tid, start: float, end: float,
             **args) -> None:
        """Record a completed span ``[start, end]`` as a balanced B/E pair."""
        if end < start:
            raise ValueError(f"span end {end} precedes start {start}")
        self.begin(name, pid, tid, start, **args)
        self.end(name, pid, tid, end)

    def instant(self, name: str, pid: int, tid, now: float, **args) -> None:
        """Record a zero-duration event (``ph: "i"``, thread scope)."""
        ev = {"name": name, "ph": "i", "s": "t", "ts": self.offset + now,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def open_spans(self) -> dict:
        """``(pid, tid) -> open span count`` for tracks with unclosed spans."""
        return {k: d for k, d in self._depth.items() if d > 0}
