"""Counter registry and per-loop metric frames (``repro.obs``).

Gives every simulated resource and the cache model named, labeled
counters — atomic operations and wait cycles by variable, DRAM channel
occupancy, cache hit tiers, steals by victim — and snapshots them into a
:class:`MetricsFrame` per parallel loop, alongside the loop's
:class:`~repro.sim.stats.LoopStats` accounting.

The activation pattern mirrors :mod:`repro.obs.tracer`: a module-level
active registry that instrumentation sites look up once and null-check
per use, so disabled metrics cost one attribute test.

A frame's cycle breakdown is complete by construction::

    busy + sched + atomic_wait + tls + hang + idle == span * n_threads

``idle_cycles`` is the remainder of the thread-cycle budget after every
measured component (barrier waits, steal-sleep, fork latency and killed
threads' unused tail all land there), so the exported totals always
reconcile with ``LoopStats`` — the invariant the exporter tests assert.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Counter", "MetricsRegistry", "MetricsFrame", "BREAKDOWN_FIELDS",
           "active", "install", "uninstall", "collecting"]

#: Cycle-breakdown components of a frame, in reporting order.  They sum
#: to ``span * n_threads`` (see module docstring).
BREAKDOWN_FIELDS = ("busy_cycles", "sched_cycles", "atomic_wait_cycles",
                    "tls_cycles", "hang_cycles", "idle_cycles")

#: The active registry (None = metrics collection disabled).
_ACTIVE: "MetricsRegistry | None" = None


def active() -> "MetricsRegistry | None":
    """The installed registry, or None when metrics collection is off."""
    return _ACTIVE


def install(registry: "MetricsRegistry") -> None:
    """Make *registry* the active registry (fails if one already is)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a metrics registry is already installed")
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {registry!r}")
    _ACTIVE = registry


def uninstall() -> None:
    """Deactivate the active registry (no-op when none is installed)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def collecting(registry: "MetricsRegistry | None" = None):
    """Context manager: install a (new by default) registry, yield it."""
    registry = registry if registry is not None else MetricsRegistry()
    install(registry)
    try:
        yield registry
    finally:
        uninstall()


class Counter:
    """A named, labeled, monotonically increasing counter."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.key}={self.value})"


def _counter_key(name: str, labels: dict) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted for stability)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds counters and the per-loop :class:`MetricsFrame` stream.

    ``cell(...)`` sets the sweep-cell labels (graph/variant/threads)
    that the experiment harness attaches to every frame recorded while a
    panel cell runs, so a JSONL dump of a whole sweep stays queryable
    per cell.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._last: dict[str, float] = {}
        self.frames: list[MetricsFrame] = []
        self._cell: dict = {}

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``name`` + *labels*, created on first use."""
        key = _counter_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(key)
        return c

    def incr(self, name: str, amount: float = 1.0, **labels) -> None:
        """Increment ``name``'s labeled counter (created on first use).

        One-call convenience for sites that never hold the counter —
        e.g. the campaign executor counting
        ``campaign.cells{status=hit|computed|failed}``.
        """
        self.counter(name, **labels).inc(amount)

    def snapshot(self) -> dict[str, float]:
        """Current absolute value of every counter (sorted keys)."""
        return {k: self._counters[k].value for k in sorted(self._counters)}

    def loop_delta(self) -> dict[str, float]:
        """Counter increments since the previous frame was cut.

        Zero-delta counters are omitted so frames stay sparse; the
        absolute totals remain available via :meth:`snapshot`.
        """
        snap = self.snapshot()
        delta = {k: v - self._last.get(k, 0.0) for k, v in snap.items()
                 if v != self._last.get(k, 0.0)}
        self._last = snap
        return delta

    # ----- sweep-cell labeling ---------------------------------------------

    @contextmanager
    def cell(self, **labels):
        """Attach *labels* (e.g. graph/variant/threads) to frames recorded
        inside the context — nesting restores the outer labels."""
        prev = self._cell
        self._cell = {**prev, **labels}
        try:
            yield self
        finally:
            self._cell = prev

    def current_cell(self) -> dict:
        """The active sweep-cell labels ({} outside any cell)."""
        return dict(self._cell)

    def add_frame(self, frame: "MetricsFrame") -> None:
        """Append a finished frame (stamped by the loop context)."""
        self.frames.append(frame)


@dataclass
class MetricsFrame:
    """One parallel loop's metric snapshot (JSONL-serialisable).

    Scalar fields mirror the loop's :class:`~repro.sim.stats.LoopStats`
    exactly; ``counters`` holds the registry increments attributable to
    the loop; ``channel`` summarises the DRAM model including the
    saturation fraction (bank-busy time over the loop's bank-cycle
    budget).
    """

    index: int = 0
    label: str = ""
    cell: dict = field(default_factory=dict)
    n_threads: int = 0
    span: float = 0.0
    busy_cycles: float = 0.0
    sched_cycles: float = 0.0
    atomic_wait_cycles: float = 0.0
    tls_cycles: float = 0.0
    hang_cycles: float = 0.0
    idle_cycles: float = 0.0
    atomic_operations: int = 0
    steals: int = 0
    failed_steals: int = 0
    tasks_spawned: int = 0
    tls_inits: int = 0
    n_chunks: int = 0
    killed_threads: list = field(default_factory=list)
    channel: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def thread_budget(self) -> float:
        """Total thread-cycles available during the loop."""
        return self.span * self.n_threads

    def breakdown(self) -> dict[str, float]:
        """Cycle components, summing to :attr:`thread_budget`."""
        return {f: getattr(self, f) for f in BREAKDOWN_FIELDS}

    def to_dict(self) -> dict:
        """JSON-serialisable representation (field order is stable)."""
        return {
            "index": self.index, "label": self.label, "cell": self.cell,
            "n_threads": self.n_threads, "span": self.span,
            "busy_cycles": self.busy_cycles,
            "sched_cycles": self.sched_cycles,
            "atomic_wait_cycles": self.atomic_wait_cycles,
            "tls_cycles": self.tls_cycles,
            "hang_cycles": self.hang_cycles,
            "idle_cycles": self.idle_cycles,
            "atomic_operations": self.atomic_operations,
            "steals": self.steals, "failed_steals": self.failed_steals,
            "tasks_spawned": self.tasks_spawned, "tls_inits": self.tls_inits,
            "n_chunks": self.n_chunks,
            "killed_threads": list(self.killed_threads),
            "channel": self.channel, "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsFrame":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    @classmethod
    def from_stats(cls, stats, *, n_threads: int, label: str = "",
                   channel: dict | None = None,
                   counters: dict | None = None) -> "MetricsFrame":
        """Build a frame from a finished loop's ``LoopStats``.

        ``idle_cycles`` is computed as the thread-cycle budget minus
        every measured component (clamped at zero), which is what makes
        the breakdown complete by construction.
        """
        measured = (stats.busy_cycles + stats.sched_cycles
                    + stats.atomic_wait_cycles + stats.tls_cycles
                    + stats.hang_cycles)
        idle = max(0.0, stats.span * n_threads - measured)
        return cls(
            label=label, n_threads=n_threads, span=stats.span,
            busy_cycles=stats.busy_cycles, sched_cycles=stats.sched_cycles,
            atomic_wait_cycles=stats.atomic_wait_cycles,
            tls_cycles=stats.tls_cycles, hang_cycles=stats.hang_cycles,
            idle_cycles=idle, atomic_operations=stats.atomic_operations,
            steals=stats.steals, failed_steals=stats.failed_steals,
            tasks_spawned=stats.tasks_spawned, tls_inits=stats.tls_inits,
            n_chunks=stats.n_chunks,
            killed_threads=list(stats.killed_threads),
            channel=dict(channel or {}), counters=dict(counters or {}),
        )
