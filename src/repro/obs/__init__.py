"""``repro.obs`` — unified telemetry for the simulated machine.

Three pieces, all off by default and free when off:

* :mod:`repro.obs.tracer` — a span/event tracer recorded by the engine
  (barrier waits, deadlocks, kills), the runtimes (chunk execution,
  steals, TLS init) and the resources (atomic/lock/DRAM reservations);
  exports to Perfetto-loadable Chrome trace JSON.
* :mod:`repro.obs.metrics` — a counter registry plus one
  :class:`~repro.obs.metrics.MetricsFrame` per parallel loop whose cycle
  breakdown reconciles exactly with the loop's ``LoopStats``.
* :mod:`repro.obs.diff` — cross-run regression diffs over JSONL metrics
  dumps, with a threshold suitable for a CI exit code.

:class:`Observer` bundles a tracer and a registry behind one context
manager::

    with Observer() as obs:
        parallel_coloring(graph, 31, spec)
    obs.write(trace_path="trace.json", metrics_path="metrics.jsonl")
"""

from __future__ import annotations

from repro.obs import metrics as _metrics
from repro.obs import tracer as _tracer
from repro.obs.diff import DiffReport, diff_frames, diff_metrics_files
from repro.obs.export import (chrome_trace_events, load_metrics_jsonl,
                              write_chrome_trace, write_metrics_jsonl)
from repro.obs.metrics import MetricsFrame, MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["Observer", "Tracer", "MetricsRegistry", "MetricsFrame",
           "DiffReport", "diff_frames", "diff_metrics_files",
           "chrome_trace_events", "write_chrome_trace",
           "write_metrics_jsonl", "load_metrics_jsonl"]


class Observer:
    """Installs a tracer and/or metrics registry for a `with` block.

    Either half can be disabled (``Observer(trace=False)`` records only
    metrics), matching the CLI's independent ``--trace`` / ``--metrics``
    flags.  Simulations started inside the block are instrumented;
    everything outside pays nothing.
    """

    def __init__(self, trace: bool = True, metrics: bool = True):
        if not trace and not metrics:
            raise ValueError("Observer with neither trace nor metrics "
                             "observes nothing")
        self.tracer = Tracer() if trace else None
        self.registry = MetricsRegistry() if metrics else None

    def __enter__(self) -> "Observer":
        if self.tracer is not None:
            _tracer.install(self.tracer)
        if self.registry is not None:
            try:
                _metrics.install(self.registry)
            except Exception:
                if self.tracer is not None:
                    _tracer.uninstall()
                raise
        return self

    def __exit__(self, *exc) -> None:
        if self.tracer is not None:
            _tracer.uninstall()
        if self.registry is not None:
            _metrics.uninstall()

    @property
    def frames(self) -> list[MetricsFrame]:
        """Frames recorded so far ([] when metrics are disabled)."""
        return [] if self.registry is None else list(self.registry.frames)

    def write(self, trace_path=None, metrics_path=None, stamp=None) -> None:
        """Export the recorded artifacts (paths are optional per half).

        *stamp* (optional ``() -> float``) timestamps the exports;
        omitted, they are byte-stable for a given run.
        """
        if trace_path is not None:
            if self.tracer is None:
                raise ValueError("this Observer recorded no trace")
            write_chrome_trace(self.tracer, trace_path, stamp=stamp)
        if metrics_path is not None:
            if self.registry is None:
                raise ValueError("this Observer recorded no metrics")
            write_metrics_jsonl(self.registry, metrics_path, stamp=stamp)
