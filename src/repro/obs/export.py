"""Exporters: Chrome trace-event JSON and JSONL metrics dumps.

The trace export targets the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
— load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  One track per simulated software thread plus one
per serialised resource; timestamps are **simulated cycles** reported in
the format's microsecond field (1 cycle == 1 µs on the UI's axis), so
traces are byte-stable across runs and machines.

Metrics dumps are JSON Lines: one :class:`~repro.obs.metrics.MetricsFrame`
object per line, preceded by a single header line (``{"repro_metrics":
1}``) identifying the file.  Writes go through the shared atomic-write
helper so a crash never leaves a half-written artifact.

Both writers emit **byte-stable** output: keys are sorted and nothing
depends on wall time.  Exports are timestamped only when the caller
passes an explicit *stamp* clock (``time.time`` for real artifacts, a
:class:`repro.bench.timer.FakeClock` in tests) — the default ``None``
omits the field entirely, so two exports of the same run are
byte-identical and diffable.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro._util import atomic_write_text
from repro.obs.metrics import MetricsFrame, MetricsRegistry
from repro.obs.tracer import PROCESS_NAMES, Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace",
           "write_metrics_jsonl", "load_metrics_jsonl", "HEADER"]

#: First line of every metrics JSONL dump (format marker + version).
HEADER = {"repro_metrics": 1}


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as finished Chrome trace-event entries.

    Adds ``process_name`` / ``thread_name`` metadata events, maps string
    track ids (resource names) to stable integers, and closes any spans
    a deadlocked or crashed region left open so every ``B`` has a
    matching ``E`` — a requirement the tests assert.
    """
    events: list[dict] = []
    track_ids: dict[tuple, int] = {}
    named_pids = set()
    max_ts = max((ev["ts"] for ev in tracer.events), default=tracer.offset)

    def resolve(pid: int, tid) -> int:
        if isinstance(tid, int):
            return tid
        key = (pid, tid)
        if key not in track_ids:
            # Stable small ids in order of first appearance (deterministic
            # because event order is deterministic).
            track_ids[key] = len([k for k in track_ids if k[0] == pid])
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": track_ids[key], "ts": 0.0,
                           "args": {"name": str(tid)}})
        return track_ids[key]

    for ev in tracer.events:
        pid = ev["pid"]
        if pid not in named_pids:
            named_pids.add(pid)
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "ts": 0.0,
                           "args": {"name": PROCESS_NAMES.get(pid, f"pid-{pid}")}})
        out = dict(ev)
        out["tid"] = resolve(pid, ev["tid"])
        events.append(out)

    # Close spans left open (deadlock, watchdog timeout, killed thread).
    for (pid, tid), depth in sorted(tracer.open_spans().items(),
                                    key=lambda kv: (kv[0][0], str(kv[0][1]))):
        rtid = resolve(pid, tid)
        for _ in range(depth):
            events.append({"name": "(unclosed)", "ph": "E", "ts": max_ts,
                           "pid": pid, "tid": rtid})
    return events


def write_chrome_trace(tracer: Tracer, path: str | os.PathLike,
                       stamp: Callable[[], float] | None = None) -> None:
    """Write the tracer's events to *path* as Perfetto-loadable JSON.

    *stamp* (optional ``() -> float``, e.g. ``time.time``) adds a
    ``generated_at`` field to ``otherData``; without it the export is
    byte-stable for a given run.
    """
    other = {"producer": "repro.obs",
             "time_unit": "simulated cycles (1 cycle == 1 us)"}
    if stamp is not None:
        other["generated_at"] = float(stamp())
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    atomic_write_text(os.fspath(path),
                      json.dumps(payload, indent=None,
                                 separators=(",", ":"), sort_keys=True))


def write_metrics_jsonl(source: MetricsRegistry | list,
                        path: str | os.PathLike,
                        stamp: Callable[[], float] | None = None) -> None:
    """Write a registry's frames (or a frame list) to *path* as JSONL.

    *stamp* (optional ``() -> float``) adds ``generated_at`` to the
    header line; without it the dump is byte-stable for a given run.
    """
    frames = source.frames if isinstance(source, MetricsRegistry) else source
    header = dict(HEADER)
    if stamp is not None:
        header["generated_at"] = float(stamp())
    lines = [json.dumps(header, separators=(",", ":"), sort_keys=True)]
    for frame in frames:
        lines.append(json.dumps(frame.to_dict(), separators=(",", ":"),
                                sort_keys=True))
    atomic_write_text(os.fspath(path), "\n".join(lines) + "\n")


def load_metrics_jsonl(path: str | os.PathLike) -> list[MetricsFrame]:
    """Read a metrics dump previously written by :func:`write_metrics_jsonl`."""
    frames: list[MetricsFrame] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty metrics file")
        header = json.loads(first)
        if "repro_metrics" not in header:
            raise ValueError(f"{path}: not a repro metrics JSONL file")
        for line in fh:
            line = line.strip()
            if line:
                frames.append(MetricsFrame.from_dict(json.loads(line)))
    return frames
