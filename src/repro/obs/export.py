"""Exporters: Chrome trace-event JSON and JSONL metrics dumps.

The trace export targets the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
— load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  One track per simulated software thread plus one
per serialised resource; timestamps are **simulated cycles** reported in
the format's microsecond field (1 cycle == 1 µs on the UI's axis), so
traces are byte-stable across runs and machines.

Metrics dumps are JSON Lines: one :class:`~repro.obs.metrics.MetricsFrame`
object per line, preceded by a single header line (``{"repro_metrics":
1}``) identifying the file.  Writes go through the shared atomic-write
helper so a crash never leaves a half-written artifact.
"""

from __future__ import annotations

import json
import os

from repro._util import atomic_write_text
from repro.obs.metrics import MetricsFrame, MetricsRegistry
from repro.obs.tracer import PROCESS_NAMES, Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace",
           "write_metrics_jsonl", "load_metrics_jsonl", "HEADER"]

#: First line of every metrics JSONL dump (format marker + version).
HEADER = {"repro_metrics": 1}


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as finished Chrome trace-event entries.

    Adds ``process_name`` / ``thread_name`` metadata events, maps string
    track ids (resource names) to stable integers, and closes any spans
    a deadlocked or crashed region left open so every ``B`` has a
    matching ``E`` — a requirement the tests assert.
    """
    events: list[dict] = []
    track_ids: dict[tuple, int] = {}
    named_pids = set()
    max_ts = max((ev["ts"] for ev in tracer.events), default=tracer.offset)

    def resolve(pid: int, tid) -> int:
        if isinstance(tid, int):
            return tid
        key = (pid, tid)
        if key not in track_ids:
            # Stable small ids in order of first appearance (deterministic
            # because event order is deterministic).
            track_ids[key] = len([k for k in track_ids if k[0] == pid])
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": track_ids[key], "ts": 0.0,
                           "args": {"name": str(tid)}})
        return track_ids[key]

    for ev in tracer.events:
        pid = ev["pid"]
        if pid not in named_pids:
            named_pids.add(pid)
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "ts": 0.0,
                           "args": {"name": PROCESS_NAMES.get(pid, f"pid-{pid}")}})
        out = dict(ev)
        out["tid"] = resolve(pid, ev["tid"])
        events.append(out)

    # Close spans left open (deadlock, watchdog timeout, killed thread).
    for (pid, tid), depth in sorted(tracer.open_spans().items(),
                                    key=lambda kv: (kv[0][0], str(kv[0][1]))):
        rtid = resolve(pid, tid)
        for _ in range(depth):
            events.append({"name": "(unclosed)", "ph": "E", "ts": max_ts,
                           "pid": pid, "tid": rtid})
    return events


def write_chrome_trace(tracer: Tracer, path: str | os.PathLike) -> None:
    """Write the tracer's events to *path* as Perfetto-loadable JSON."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs",
                      "time_unit": "simulated cycles (1 cycle == 1 us)"},
    }
    atomic_write_text(os.fspath(path), json.dumps(payload, indent=None,
                                                  separators=(",", ":")))


def write_metrics_jsonl(source: MetricsRegistry | list,
                        path: str | os.PathLike) -> None:
    """Write a registry's frames (or a frame list) to *path* as JSONL."""
    frames = source.frames if isinstance(source, MetricsRegistry) else source
    lines = [json.dumps(HEADER, separators=(",", ":"))]
    for frame in frames:
        lines.append(json.dumps(frame.to_dict(), separators=(",", ":")))
    atomic_write_text(os.fspath(path), "\n".join(lines) + "\n")


def load_metrics_jsonl(path: str | os.PathLike) -> list[MetricsFrame]:
    """Read a metrics dump previously written by :func:`write_metrics_jsonl`."""
    frames: list[MetricsFrame] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty metrics file")
        header = json.loads(first)
        if "repro_metrics" not in header:
            raise ValueError(f"{path}: not a repro metrics JSONL file")
        for line in fh:
            line = line.strip()
            if line:
                frames.append(MetricsFrame.from_dict(json.loads(line)))
    return frames
