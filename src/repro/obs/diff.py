"""Cross-run regression diffs over metrics JSONL dumps.

Compares two metrics dumps (a committed baseline and a fresh run) cell
by cell: frames are grouped by their sweep-cell labels plus loop label,
summed, and each cycle-breakdown component is checked for relative
drift.  ``repro-experiments diff-metrics`` turns the result into an
exit code, which is what makes this usable as a CI perf-regression
gate — the simulation is deterministic, so *any* drift is a model
change, and drift beyond the threshold fails the build.

Tiny components are compared against a noise floor (a fraction of the
cell's thread-cycle budget) so a 3-cycle wobble in a nearly-empty
bucket cannot fail a build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import load_metrics_jsonl
from repro.obs.metrics import BREAKDOWN_FIELDS, MetricsFrame

__all__ = ["DiffRow", "DiffReport", "diff_frames", "diff_metrics_files",
           "DEFAULT_THRESHOLD"]

#: Default relative-drift threshold (20%, the CI gate's setting).
DEFAULT_THRESHOLD = 0.20

#: Components compared per cell: the breakdown plus the span itself.
_COMPONENTS = ("span",) + BREAKDOWN_FIELDS

#: Noise floor: components below this fraction of the cell's
#: thread-cycle budget are compared against the floor, not themselves.
_FLOOR_FRACTION = 0.01


@dataclass(frozen=True)
class DiffRow:
    """Drift of one cycle component in one cell."""

    cell: str
    component: str
    baseline: float
    current: float
    drift: float                 # (current - baseline) / reference

    @property
    def regressed(self) -> bool:
        """True when the component grew (took more cycles)."""
        return self.drift > 0


@dataclass
class DiffReport:
    """All compared components plus the structural mismatches."""

    threshold: float
    rows: list[DiffRow] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)   # cells only in baseline
    added: list[str] = field(default_factory=list)     # cells only in current

    @property
    def breaches(self) -> list[DiffRow]:
        """Rows whose absolute drift exceeds the threshold."""
        return [r for r in self.rows if abs(r.drift) > self.threshold]

    @property
    def ok(self) -> bool:
        """True when no component drifted past the threshold and the two
        dumps cover the same cells."""
        return not self.breaches and not self.missing and not self.added

    def format(self, max_rows: int = 40) -> str:
        """Human-readable drift table (breaches first, largest drift first)."""
        from repro.experiments.report import format_rows
        ordered = sorted(self.rows, key=lambda r: -abs(r.drift))
        shown = [r for r in ordered if abs(r.drift) > self.threshold]
        shown += [r for r in ordered if abs(r.drift) <= self.threshold
                  and r.baseline != r.current]
        shown = shown[:max_rows]
        lines = []
        if shown:
            lines.append(format_rows(
                ["cell", "component", "baseline", "current", "drift"],
                [(r.cell, r.component, r.baseline, r.current,
                  f"{r.drift:+.1%}" + (" !" if abs(r.drift) > self.threshold
                                       else "")) for r in shown]))
        else:
            lines.append("no cycle-breakdown drift")
        for cell in self.missing:
            lines.append(f"missing from current run: {cell}")
        for cell in self.added:
            lines.append(f"new in current run: {cell}")
        verdict = "OK" if self.ok else "REGRESSION"
        lines.append(f"{verdict}: {len(self.breaches)} component(s) past "
                     f"{self.threshold:.0%} over {len(self.rows)} compared")
        return "\n".join(lines)


def _cell_key(frame: MetricsFrame) -> str:
    """Stable grouping key: sweep-cell labels plus the loop label."""
    cell = frame.cell
    parts = [f"{k}={cell[k]}" for k in sorted(cell)]
    parts.append(f"loop={frame.label}" if frame.label else "loop=?")
    return " ".join(parts)


def _aggregate(frames: list[MetricsFrame]) -> dict[str, dict[str, float]]:
    """Sum each cell's components over its frames (plus the budget)."""
    cells: dict[str, dict[str, float]] = {}
    for frame in frames:
        agg = cells.setdefault(_cell_key(frame),
                               {c: 0.0 for c in _COMPONENTS} | {"budget": 0.0})
        agg["span"] += frame.span
        agg["budget"] += frame.thread_budget
        for comp, value in frame.breakdown().items():
            agg[comp] += value
    return cells


def diff_frames(baseline: list[MetricsFrame], current: list[MetricsFrame],
                threshold: float = DEFAULT_THRESHOLD) -> DiffReport:
    """Compare two frame streams; see the module docstring for semantics."""
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    base_cells = _aggregate(baseline)
    cur_cells = _aggregate(current)
    report = DiffReport(threshold=threshold)
    report.missing = sorted(set(base_cells) - set(cur_cells))
    report.added = sorted(set(cur_cells) - set(base_cells))
    for cell in sorted(set(base_cells) & set(cur_cells)):
        b, c = base_cells[cell], cur_cells[cell]
        floor = _FLOOR_FRACTION * max(b["budget"], 1.0)
        for comp in _COMPONENTS:
            reference = max(b[comp], floor)
            drift = (c[comp] - b[comp]) / reference
            report.rows.append(DiffRow(cell, comp, b[comp], c[comp], drift))
    return report


def diff_metrics_files(baseline_path, current_path,
                       threshold: float = DEFAULT_THRESHOLD) -> DiffReport:
    """Diff two JSONL dumps on disk (the CLI's entry point)."""
    return diff_frames(load_metrics_jsonl(baseline_path),
                       load_metrics_jsonl(current_path), threshold)
