"""Breadth-first search kernels: sequential oracle, layered parallel
variants (block queue / TLS queue / pennant bag), and the bag structure."""

from repro.kernels.bfs.sequential import bfs_sequential, bfs_fifo, frontier_profile
from repro.kernels.bfs.layered import (
    BFSRun,
    simulate_bfs,
    bfs_parallel,
    BFS_VARIANTS,
)
from repro.kernels.bfs.bag import Bag, Pennant, PennantNode
from repro.kernels.bfs.direction_optimizing import (
    bfs_direction_optimizing,
    DirectionOptimizingResult,
)
from repro.kernels.bfs.validate import validate_bfs, BfsValidationError

__all__ = [
    "bfs_sequential",
    "bfs_fifo",
    "frontier_profile",
    "BFSRun",
    "simulate_bfs",
    "bfs_parallel",
    "BFS_VARIANTS",
    "Bag",
    "Pennant",
    "PennantNode",
    "bfs_direction_optimizing",
    "DirectionOptimizingResult",
    "validate_bfs",
    "BfsValidationError",
]
