"""Graph500-style BFS output validation.

The paper points at the Graph 500 benchmark as the reference setting for
parallel BFS; Graph 500 specifies result *validation* rather than
comparing against a reference run.  :func:`validate_bfs` checks the
specification's level conditions directly on a distance labelling:

1. the source has distance 0 and is the only such vertex (if reachable
   vertices exist, exactly one has distance 0);
2. every edge spans at most one level;
3. every vertex at distance d > 0 has a neighbour at distance d - 1;
4. every vertex reachable from the source is labelled, and no vertex
   outside the source's component is.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.base import gather_neighbors

__all__ = ["validate_bfs", "BfsValidationError"]


class BfsValidationError(AssertionError):
    """Raised by :func:`validate_bfs` with a description of the violation."""


def validate_bfs(graph: CSRGraph, source: int, dist: np.ndarray,
                 raise_on_error: bool = True) -> bool:
    """Validate a BFS distance labelling (see module docstring).

    Returns True on success; on failure raises :class:`BfsValidationError`
    (or returns False with ``raise_on_error=False``).
    """
    try:
        _check(graph, source, np.asarray(dist))
    except BfsValidationError:
        if raise_on_error:
            raise
        return False
    return True


def _check(graph: CSRGraph, source: int, dist: np.ndarray) -> None:
    n = graph.n_vertices
    if len(dist) != n:
        raise BfsValidationError(f"dist has length {len(dist)}, expected {n}")
    if not 0 <= source < n:
        raise BfsValidationError(f"source {source} out of range")
    if dist[source] != 0:
        raise BfsValidationError(f"source distance is {dist[source]}, not 0")
    if int((dist == 0).sum()) != 1:
        raise BfsValidationError("more than one vertex at distance 0")
    if np.any(dist < -1):
        raise BfsValidationError("distances below -1 present")

    labelled = np.nonzero(dist >= 0)[0]
    nbrs, seg = gather_neighbors(graph.indptr, graph.indices, labelled)
    if len(nbrs):
        dv = dist[labelled[seg]]
        dw = dist[nbrs]
        # (2) labelled-labelled edges span <= 1 level
        both = dw >= 0
        if np.any(np.abs(dv[both] - dw[both]) > 1):
            raise BfsValidationError("an edge spans more than one level")
        # (4a) a labelled vertex with an unlabelled neighbour is fine only
        # if... actually unlabelled neighbour of labelled vertex is a
        # reachability violation:
        if np.any(~both):
            v = labelled[seg[~both]][0]
            w = nbrs[~both][0]
            raise BfsValidationError(
                f"vertex {w} adjacent to labelled {v} is unlabelled")
        # (3) every non-source labelled vertex has a parent one level up
        has_parent = np.zeros(n, dtype=bool)
        parentish = dw == dv - 1
        if parentish.any():
            has_parent[labelled[seg[parentish]]] = True
        need = labelled[dist[labelled] > 0]
        missing = need[~has_parent[need]]
        if len(missing):
            raise BfsValidationError(
                f"vertex {missing[0]} at distance {dist[missing[0]]} has no "
                "parent one level closer")
    elif len(labelled) > 1:
        raise BfsValidationError("labelled vertices without any edges")
