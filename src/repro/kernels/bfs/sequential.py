"""Sequential breadth-first search — the paper's Algorithm 6.

:func:`bfs_sequential` is the level-synchronous vectorised form (gather the
frontier's neighbours, keep the unseen ones); it computes exactly the same
distance labelling as the FIFO formulation and is the baseline all parallel
variants are checked against.  :func:`bfs_fifo` is a literal transcription
of Algorithm 6, used as an independent oracle in the tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_sequential", "bfs_fifo", "frontier_profile"]


def bfs_sequential(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS distances from *source* (−1 for unreachable vertices)."""
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 1
    while frontier.size:
        starts, ends = indptr[frontier], indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        # Gather all neighbours of the frontier into one flat array.
        gather = _flat_gather(indices, starts, ends, total)
        fresh = gather[dist[gather] == -1]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
        level += 1
    return dist


def _flat_gather(indices: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                 total: int) -> np.ndarray:
    """Concatenate CSR slices ``indices[starts[i]:ends[i]]`` without a loop."""
    lens = ends - starts
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lens)
    return indices[flat].astype(np.int64)


def bfs_fifo(graph: CSRGraph, source: int) -> np.ndarray:
    """Algorithm 6, verbatim: FIFO queue, one vertex popped at a time."""
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    fifo = deque([source])
    while fifo:
        v = fifo.popleft()
        dv = dist[v]
        for w in indices[indptr[v]:indptr[v + 1]]:
            if dist[w] == -1:
                dist[w] = dv + 1
                fifo.append(int(w))
    return dist


def frontier_profile(graph: CSRGraph, source: int) -> np.ndarray:
    """Level widths ``x_l`` (number of vertices per BFS level).

    This is the input to the paper's analytic speedup model (§III-C): the
    computation is decomposed into ``L`` synchronised steps with ``x_l``
    vertices to visit at level ``l``.
    """
    dist = bfs_sequential(graph, source)
    reached = dist[dist >= 0]
    if reached.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(reached).astype(np.int64)
