"""Layered parallel BFS (the paper's Algorithm 7) with the three frontier
data structures of §IV-C:

* ``openmp-block`` / ``tbb-block`` — the paper's novel **block-accessed
  shared queue**: one contiguous array per level; each thread reserves
  blocks of ``block`` slots with an atomic fetch-and-add and pads its last
  partial block with sentinel entries (-1) that the next level skips.
* ``openmp-tls`` — the SNAP v0.4 scheme: thread-local queues merged into a
  global queue at the end of every level, with a per-vertex lock before
  insertion (including the paper's improvement of checking the level
  before attempting the lock).
* ``cilk-bag`` — the Leiserson–Schardl pennant bag
  (:mod:`repro.kernels.bfs.bag`): allocation-heavy, pointer-chasing, and —
  on the simulated KNF as on the real one — poorly scaling, because every
  pennant-node allocation funnels through the µOS allocator lock.

Every variant exists in *relaxed* (benign races allowed: a vertex can
enter the next queue more than once, costing redundant work next level)
and *locked* flavours; §V-D reports relaxed consistently wins, which the
cost model reproduces (lock latency per discovered vertex vs. occasional
duplicate scans).

Semantics are replayed over the simulated chunk schedule in concurrency
waves, so duplicate counts emerge from actual (simulated) concurrency.
The resulting distance labelling is always exact (the races are benign) —
tests assert it equals :func:`~repro.kernels.bfs.sequential.bfs_sequential`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.base import (AccessSet, KernelRun, gather_neighbors,
                                wave_partition)
from repro.machine.cache import access_profile_cached
from repro.machine.config import KNF, MachineConfig
from repro.machine.costs import OP, WorkCosts, bfs_scan_costs
from repro.runtime.base import (Partitioner, ProgrammingModel, RuntimeSpec,
                                Schedule)

__all__ = ["BFSRun", "simulate_bfs", "BFS_VARIANTS", "bfs_parallel"]

#: Per-insert cost of the bag frontier: the Cilk reducer resolves its view
#: through the runtime's hyperobject map on every insert, plus the pennant
#: pointer work itself.
BAG_INSERT_CYCLES = 70.0
#: Elements per pennant node (the paper's ``grainsize``).
BAG_GRAIN = 64
#: Serialized per-worker cost of the end-of-level reducer merge (bag
#: unions happen in the runtime's combine chain).
BAG_MERGE_CYCLES = 400.0
#: Cycles to copy one queue entry during the TLS end-of-level merge.
TLS_MERGE_CYCLES_PER_ENTRY = 2.0
#: Width of the check-then-write race window in a relaxed queue insert.
#: Two concurrent threads duplicate a vertex only when their windows
#: overlap; the replay thins lockstep collisions by
#: ``RACE_WINDOW_CYCLES / mean entry duration`` ("the race condition is
#: unlikely and benign", §III-C).
RACE_WINDOW_CYCLES = 60.0

BFS_VARIANTS = ("openmp-block", "tbb-block", "openmp-tls", "cilk-bag")


@dataclass
class BFSRun(KernelRun):
    """Result of one simulated layered-BFS execution."""

    dist: np.ndarray = None
    n_levels: int = 0
    duplicates: int = 0
    sentinels: int = 0
    entries_processed: int = 0
    level_spans: list = field(default_factory=list)

    def __init__(self):
        KernelRun.__init__(self)
        self.dist = None
        self.n_levels = 0
        self.duplicates = 0
        self.sentinels = 0
        self.entries_processed = 0
        self.level_spans = []


def _variant_spec(variant: str, block: int) -> RuntimeSpec:
    """Default runtime configuration per variant (per the paper's setup)."""
    if variant == "openmp-block":
        return RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.DYNAMIC,
                           chunk=block)
    if variant == "tbb-block":
        return RuntimeSpec(ProgrammingModel.TBB, partitioner=Partitioner.SIMPLE,
                           chunk=block)
    if variant == "openmp-tls":
        return RuntimeSpec(ProgrammingModel.OPENMP, schedule=Schedule.STATIC,
                           chunk=block)
    if variant == "cilk-bag":
        return RuntimeSpec(ProgrammingModel.CILK, chunk=BAG_GRAIN)
    raise ValueError(f"unknown BFS variant {variant!r}; pick from {BFS_VARIANTS}")


def simulate_bfs(
    graph: CSRGraph,
    n_threads: int,
    variant: str = "openmp-block",
    relaxed: bool = True,
    source: int | None = None,
    block: int = 32,
    config: MachineConfig = KNF,
    cache_scale: float = 1.0,
    seed: int = 0,
    faults=None,
) -> BFSRun:
    """Simulate a layered parallel BFS of *graph* from *source*.

    Returns a :class:`BFSRun`; ``run.dist`` is the exact BFS labelling and
    ``run.total_cycles`` the simulated execution time.  ``faults`` (a
    :class:`~repro.sim.faults.FaultInjector`) degrades the simulated chip;
    kill faults can lose discoveries, so validate a faulted labelling with
    :func:`~repro.kernels.bfs.validate.validate_bfs`.
    """
    if variant not in BFS_VARIANTS:
        raise ValueError(f"unknown BFS variant {variant!r}; pick from {BFS_VARIANTS}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    n = graph.n_vertices
    run = BFSRun()
    run.dist = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return run
    if source is None:
        source = n // 2
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")

    spec = _variant_spec(variant, block)
    profile = access_profile_cached(graph, config, n_threads, state_bytes=4,
                             cache_scale=cache_scale)
    scan = bfs_scan_costs(graph, profile)
    indptr, indices = graph.indptr, graph.indices

    run.dist[source] = 0
    queue = np.asarray([source], dtype=np.int64)
    level = 1
    while True:
        valid = queue >= 0
        verts = queue[valid]
        if verts.size == 0:
            break
        run.entries_processed += len(queue)

        pushes = _fresh_push_counts(indptr, indices, verts, run.dist)
        work = _level_costs(queue, valid, verts, pushes, scan, config,
                            variant, relaxed, block)
        stats = spec.parallel_for(config, n_threads, work,
                                  fork=(level == 1), seed=seed + level,
                                  faults=faults,
                                  access=_level_access(graph, queue, run.dist,
                                                       relaxed, n_threads))
        span = stats.span
        if variant == "cilk-bag":
            # Every pennant-node allocation serialises on the µOS heap lock
            # (one node per BAG_GRAIN inserts, plus each active worker's
            # hopper), and the per-worker bags merge through the reducer
            # combine chain at level end.
            active = min(n_threads, max(1, -(-len(queue) // BAG_GRAIN)))
            allocs = int(pushes.sum()) // BAG_GRAIN + active
            span = max(span, allocs * config.alloc_cycles)
            if n_threads > 1:
                span += active * BAG_MERGE_CYCLES
        if variant == "openmp-tls":
            # End-of-level merge of thread-local queues into the global one.
            merge = (config.atomic_cycles * max(1, n_threads - 1).bit_length()
                     + pushes.sum() / max(1, n_threads) * TLS_MERGE_CYCLES_PER_ENTRY)
            span += merge
        run.total_cycles += span
        run.level_spans.append(span)
        run.loop_stats.append(stats)

        mean_entry = ((work.compute[valid].sum() + work.stall[valid].sum())
                      / max(1, len(verts)))
        p_race = min(1.0, RACE_WINDOW_CYCLES / max(1.0, mean_entry))
        rng = np.random.default_rng((seed + 1) * 100_003 + level)
        per_thread, duplicates = _replay_level(
            indptr, indices, queue, run.dist, stats.chunks, n_threads,
            level, relaxed, p_race, rng)
        run.duplicates += duplicates
        queue, pad = _build_queue(per_thread, n_threads, variant, block)
        run.sentinels += pad
        level += 1

    run.n_levels = level - 1
    return run


def _level_access(graph: CSRGraph, queue: np.ndarray, dist: np.ndarray,
                  relaxed: bool, n_threads: int) -> AccessSet:
    """Footprint of one level's scan: entry ``i`` reads ``dist`` at the
    neighbours of ``queue[i]`` (the discovery check) and writes ``dist``
    at the undiscovered ones.

    The closures are evaluated at region end, *before* the semantic
    replay commits this level's discoveries, so ``dist`` still holds the
    level-start state the simulated threads actually observed.  Relaxed
    queues race benignly on those writes (the same vertex can be claimed
    twice — "unlikely and benign", paper §III-C); locked variants guard
    the write with the per-vertex lock family, leaving only the
    check-before-lock read unsynchronised — also benign, the worst case
    being a wasted lock attempt.
    """

    def read(lo, hi):
        entries = queue[lo:hi]
        verts = entries[entries >= 0]
        return gather_neighbors(graph.indptr, graph.indices, verts)[0]

    def written(lo, hi):
        nbrs = read(lo, hi)
        return nbrs[dist[nbrs] == -1]

    reason = ("relaxed queue insert: a vertex claimed by two threads is "
              "scanned twice next level, never mislabelled (paper §III-C)"
              if relaxed else
              "check-before-lock reads the level without the per-vertex "
              "lock; losing the check costs one lock attempt (paper §IV-C)")
    return (AccessSet("bfs-level")
            .reads("dist", read)
            .writes("dist", written,
                    guard=None if relaxed else "bfs-vertex-lock")
            .benign_race("dist", reason, expect=False))


def _fresh_push_counts(indptr, indices, verts, dist) -> np.ndarray:
    """Per queue entry: how many of its neighbours are undiscovered at
    level start (the push attempts it will make)."""
    nbrs, seg = gather_neighbors(indptr, indices, verts)
    fresh = (dist[nbrs] == -1).astype(np.float64)
    out = np.zeros(len(verts))
    if len(nbrs):
        np.add.at(out, seg, fresh)
    return out


def _level_costs(queue, valid, verts, pushes, scan: WorkCosts,
                 config: MachineConfig, variant: str, relaxed: bool,
                 block: int) -> WorkCosts:
    """Per-entry cost arrays for one level's parallel scan."""
    m = len(queue)
    compute = np.full(m, OP.BFS_SENTINEL)
    stall = np.zeros(m)
    volume = np.full(m, 4.0 / config.line_bytes)  # queue entry stream-in

    compute[valid] = scan.compute[verts] + pushes * OP.BFS_PUSH
    stall[valid] = scan.stall[verts]
    volume[valid] += scan.volume[verts]

    if variant in ("openmp-block", "tbb-block"):
        # Output-queue tail fetch-and-add, amortised one per filled block.
        compute[valid] += pushes / block * config.atomic_cycles
        if not relaxed:
            stall[valid] += pushes * config.lock_cycles
    elif variant == "openmp-tls":
        # SNAP locks each vertex before pushing (fresh ones only, with the
        # paper's check-before-lock improvement).
        stall[valid] += pushes * config.lock_cycles
    elif variant == "cilk-bag":
        compute[valid] += pushes * BAG_INSERT_CYCLES
        # Traversal walks pennant trees: one exposed pointer chase per node.
        stall[valid] += config.dram_cycles / BAG_GRAIN
        if not relaxed:
            stall[valid] += pushes * config.lock_cycles
    return WorkCosts(compute, stall, volume)


def _replay_level(indptr, indices, queue, dist, chunks, n_threads, level,
                  relaxed, p_race=1.0, rng=None):
    """Lockstep semantic replay of one level's discoveries.

    Chunks are grouped into concurrency waves; within a wave the threads
    advance entry by entry in lockstep.  A discovery can race only with
    discoveries made at the *same* lockstep instant by other chunks
    (caches are coherent — a committed ``bfs[w]`` write is visible the
    next instant), and even then the relaxed queues duplicate the vertex
    only when the check-then-write windows actually overlap, which happens
    with probability *p_race* (window width / entry duration) — the
    "unlikely and benign" race of Leiserson & Schardl that §III-C/V-D
    discusses.  The locked variants admit one winner per vertex.

    Returns ``(per_thread, duplicates)`` where ``per_thread[tid]`` is the
    ordered list of vertex arrays thread *tid* appended to its queue.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    per_thread: dict[int, list] = {}
    duplicates = 0
    for wave in wave_partition(chunks, n_threads):
        if len(wave) == 1:
            # Single chunk: sequential execution, no races possible.
            c = wave[0]
            entries = queue[c.lo:c.hi]
            verts = entries[entries >= 0]
            if verts.size == 0:
                continue
            nbrs, _ = gather_neighbors(indptr, indices, verts)
            found = np.unique(nbrs[dist[nbrs] == -1])
            if len(found):
                dist[found] = level
                per_thread.setdefault(c.thread, []).append(found)
            continue
        lows = np.asarray([c.lo for c in wave], dtype=np.int64)
        sizes = np.asarray([c.hi - c.lo for c in wave], dtype=np.int64)
        tids = [c.thread for c in wave]
        for p in range(int(sizes.max())):
            live = np.nonzero(sizes > p)[0]
            entries = queue[lows[live] + p]
            ok = entries >= 0
            live, verts = live[ok], entries[ok]
            if verts.size == 0:
                continue
            nbrs, seg = gather_neighbors(indptr, indices, verts)
            fresh = dist[nbrs] == -1
            if not fresh.any():
                continue
            cand_c = live[seg[fresh]]      # wave-chunk index per claim
            cand_v = nbrs[fresh]
            order = np.lexsort((cand_c, cand_v))
            cand_c, cand_v = cand_c[order], cand_v[order]
            first = np.ones(len(cand_v), dtype=bool)
            first[1:] = cand_v[1:] != cand_v[:-1]
            if relaxed:
                # An extra claimant duplicates only if its check-then-write
                # window overlapped the winner's.
                keep = first.copy()
                extra = ~first
                if extra.any():
                    keep[extra] = rng.random(int(extra.sum())) < p_race
            else:
                keep = first
            uniq = np.unique(cand_v)
            duplicates += int(keep.sum()) - len(uniq)
            dist[uniq] = level
            for ci in np.unique(cand_c):
                mine = cand_v[keep & (cand_c == ci)]
                if len(mine):
                    per_thread.setdefault(tids[ci], []).append(mine)
    return per_thread, duplicates


def _build_queue(per_thread, n_threads, variant, block):
    """Assemble the next-level queue from per-thread discovery streams."""
    parts = []
    pad_total = 0
    for tid in range(n_threads):
        if tid not in per_thread:
            continue
        mine = np.concatenate(per_thread[tid])
        if variant in ("openmp-block", "tbb-block"):
            pad = (-len(mine)) % block
            if pad:
                mine = np.concatenate([mine, np.full(pad, -1, dtype=np.int64)])
                pad_total += pad
        parts.append(mine)
    if not parts:
        return np.zeros(0, dtype=np.int64), pad_total
    return np.concatenate(parts), pad_total


def bfs_parallel(graph: CSRGraph, source: int | None = None,
                 n_threads: int = 1, **kwargs) -> np.ndarray:
    """Convenience API: run the simulated parallel BFS, return distances."""
    return simulate_bfs(graph, n_threads, source=source, **kwargs).dist
