"""Pennant bags — the Leiserson–Schardl BFS frontier data structure.

A *pennant* of rank ``k`` is a tree of ``2**k`` nodes: a root with one
child that is the root of a complete binary tree of ``2**k - 1`` nodes.
A *bag* is a sparse array ("spine") holding at most one pennant per rank,
so bags of n elements merge like binary addition — O(log n) pennant
unions, each O(1) pointer work — and split symmetrically.  Following the
paper ("the node of the balanced tree can store more than a single
element"), every node carries up to ``grain`` elements, which amortises
pointer and allocation overheads.

This is a complete, usable implementation (insert, union, split,
iteration, len); the simulated ``CilkPlus-Bag`` BFS variant uses it for
semantics and derives its cost model (allocations per insert, pointer
chases per traversed node) from the operation counts recorded here.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["PennantNode", "Pennant", "Bag"]


class PennantNode:
    """One tree node holding up to ``grain`` elements."""

    __slots__ = ("elements", "left", "right")

    def __init__(self, elements=None):
        self.elements = list(elements) if elements else []
        self.left: PennantNode | None = None
        self.right: PennantNode | None = None


class Pennant:
    """A pennant of rank ``k``: exactly ``2**k`` nodes."""

    __slots__ = ("root", "k")

    def __init__(self, root: PennantNode, k: int = 0):
        self.root = root
        self.k = k

    @property
    def n_nodes(self) -> int:
        """Node count: exactly ``2**k``."""
        return 1 << self.k

    def union(self, other: "Pennant") -> "Pennant":
        """Combine two rank-k pennants into one rank-(k+1) pennant, O(1).

        ``other``'s root becomes the new left child chain of ``self``'s
        root (the classic three-pointer splice).
        """
        if other.k != self.k:
            raise ValueError(f"cannot union pennants of ranks {self.k} and {other.k}")
        other.root.right = self.root.left
        self.root.left = other.root
        self.k += 1
        return self

    def split(self) -> "Pennant":
        """Inverse of :meth:`union`: halve this pennant, returning the
        removed rank-(k-1) pennant. O(1)."""
        if self.k == 0:
            raise ValueError("cannot split a rank-0 pennant")
        other_root = self.root.left
        self.root.left = other_root.right
        other_root.right = None
        self.k -= 1
        return Pennant(other_root, self.k)

    def __iter__(self) -> Iterator:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield from node.elements
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)


class Bag:
    """A bag of elements: a spine of at-most-one pennant per rank.

    ``grain`` elements are buffered in a *hopper* node before being
    committed as a rank-0 pennant (carry-propagating into the spine).
    Operation counters (``allocations``, ``unions``) feed the simulated
    cost model.
    """

    def __init__(self, grain: int = 64):
        if grain < 1:
            raise ValueError(f"grain must be >= 1, got {grain}")
        self.grain = grain
        self.spine: list[Pennant | None] = []
        self._hopper: PennantNode | None = None
        self._count = 0
        self.allocations = 0
        self.unions = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, x) -> None:
        """Add one element (amortised O(1), worst case O(log n))."""
        if self._hopper is None:
            self._hopper = PennantNode()
            self.allocations += 1
        self._hopper.elements.append(x)
        self._count += 1
        if len(self._hopper.elements) >= self.grain:
            self._carry(Pennant(self._hopper, 0))
            self._hopper = None

    def _carry(self, p: Pennant) -> None:
        """Insert pennant *p* with binary carry propagation."""
        k = p.k
        while True:
            while len(self.spine) <= k:
                self.spine.append(None)
            if self.spine[k] is None:
                self.spine[k] = p
                return
            q = self.spine[k]
            self.spine[k] = None
            p = q.union(p)
            self.unions += 1
            k += 1

    def union(self, other: "Bag") -> None:
        """Merge *other* into this bag (other is emptied). O(log n) unions."""
        if other.grain != self.grain:
            raise ValueError("cannot union bags with different grains")
        if other._hopper is not None:
            for x in other._hopper.elements:
                self.insert(x)
            other._hopper = None
        for p in other.spine:
            if p is not None:
                self._carry(p)
        other.spine = []
        other._count = 0
        self._count = self._recount()

    def _recount(self) -> int:
        total = len(self._hopper.elements) if self._hopper is not None else 0
        for p in self.spine:
            if p is not None:
                total += sum(len(n.elements) for n in self._nodes(p))
        return total

    @staticmethod
    def _nodes(p: Pennant):
        stack = [p.root]
        while stack:
            node = stack.pop()
            yield node
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def split(self) -> "Bag":
        """Remove and return roughly half of this bag (O(log n)).

        Follows Leiserson–Schardl BAG-SPLIT: the hopper stays here; every
        spine pennant of rank > 0 splits in two, one half to each bag;
        the rank-0 pennant (if any) stays here.
        """
        other = Bag(self.grain)
        if not self.spine:
            return other
        new_self: list[Pennant | None] = [None] * len(self.spine)
        new_other: list[Pennant | None] = [None] * len(self.spine)
        zero = self.spine[0]
        for k in range(1, len(self.spine)):
            p = self.spine[k]
            if p is None:
                continue
            half = p.split()
            new_self[k - 1] = p
            new_other[k - 1] = half
        if zero is not None:
            new_self_zero = new_self[0]
            if new_self_zero is None:
                new_self[0] = zero
            else:
                # carry: two rank-0 slots -> merge into rank 1 later
                self.spine = new_self
                other.spine = new_other
                self._carry(zero)
                self._count = self._recount()
                other._count = other._recount()
                return other
        self.spine = new_self
        other.spine = new_other
        self._count = self._recount()
        other._count = other._recount()
        return other

    def __iter__(self) -> Iterator:
        if self._hopper is not None:
            yield from self._hopper.elements
        for p in self.spine:
            if p is not None:
                yield from p

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        for k, p in enumerate(self.spine):
            if p is None:
                continue
            if p.k != k:
                raise AssertionError(f"pennant at slot {k} has rank {p.k}")
            n_nodes = sum(1 for _ in self._nodes(p))
            if n_nodes != (1 << k):
                raise AssertionError(
                    f"pennant of rank {k} has {n_nodes} nodes, expected {1 << k}")
        if self._recount() != self._count:
            raise AssertionError("element count out of sync")
