"""Direction-optimising BFS (extension / future work).

The paper predates Beamer's direction-optimising BFS but its analysis
points straight at it: on wide frontiers the top-down scan touches every
edge out of the frontier, while a *bottom-up* step lets each undiscovered
vertex probe its neighbours and stop at the first discovered parent.
This module implements the hybrid (top-down ↔ bottom-up switching on
frontier size) on the CSR substrate, as the natural "algorithm
engineering beyond current CPUs" follow-up the paper's conclusion invites.

The labelling is identical to sequential BFS (tests assert it); the
interesting output is ``edges_examined`` — the work saved by switching —
which the benchmarks report for the suite graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.base import gather_neighbors

__all__ = ["bfs_direction_optimizing", "DirectionOptimizingResult"]


@dataclass
class DirectionOptimizingResult:
    """Distances plus per-level direction decisions and edge counts."""

    dist: np.ndarray
    directions: list = field(default_factory=list)   # "top-down"/"bottom-up"
    edges_examined: int = 0
    edges_examined_topdown_only: int = 0


def bfs_direction_optimizing(
    graph: CSRGraph,
    source: int,
    alpha: float = 4.0,
    beta: float = 24.0,
) -> DirectionOptimizingResult:
    """Hybrid BFS from *source* (Beamer's α/β switching heuristic).

    Switch to bottom-up when the frontier's out-edges exceed the
    unvisited vertices' edges divided by *alpha*; switch back when the
    frontier shrinks below ``n / beta``.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees

    result = DirectionOptimizingResult(dist=np.full(n, -1, dtype=np.int64))
    dist = result.dist
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    unvisited_edges = int(degrees.sum()) - int(degrees[source])
    level = 1
    bottom_up = False
    prev_size = 0
    while frontier.size:
        frontier_edges = int(degrees[frontier].sum())
        result.edges_examined_topdown_only += frontier_edges
        growing = frontier.size > prev_size
        prev_size = frontier.size
        if (not bottom_up and growing
                and frontier_edges > unvisited_edges / alpha):
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False

        if bottom_up:
            result.directions.append("bottom-up")
            frontier, examined = _bottom_up_step(indptr, indices, dist, level)
        else:
            result.directions.append("top-down")
            frontier, examined = _top_down_step(indptr, indices, dist,
                                                frontier, level)
        result.edges_examined += examined
        unvisited_edges -= int(degrees[frontier].sum()) if frontier.size else 0
        level += 1
    return result


def _top_down_step(indptr, indices, dist, frontier, level):
    nbrs, _ = gather_neighbors(indptr, indices, frontier)
    examined = len(nbrs)
    if not examined:
        return np.zeros(0, dtype=np.int64), 0
    new = np.unique(nbrs[dist[nbrs] == -1])
    if len(new):
        dist[new] = level
    return new, examined


def _bottom_up_step(indptr, indices, dist, level):
    """Each unvisited vertex scans neighbours until a level-1 parent.

    Vectorised conservatively: gathers all unvisited vertices' edges and
    counts, per vertex, only the prefix up to (and including) the first
    parent hit — the short-circuit a real implementation gets for free.
    """
    unvisited = np.nonzero(dist == -1)[0]
    if not len(unvisited):
        return np.zeros(0, dtype=np.int64), 0
    nbrs, seg = gather_neighbors(indptr, indices, unvisited)
    if not len(nbrs):
        return np.zeros(0, dtype=np.int64), 0
    hit = dist[nbrs] == level - 1
    found = np.zeros(len(unvisited), dtype=bool)
    np.logical_or.at(found, seg, hit)
    new = unvisited[found]
    if len(new):
        dist[new] = level

    # edges actually examined: position of first hit within each segment
    # (full degree when no hit)
    lens = np.bincount(seg, minlength=len(unvisited))
    first_hit = np.full(len(unvisited), np.iinfo(np.int64).max, dtype=np.int64)
    pos_in_seg = np.arange(len(nbrs)) - np.repeat(
        np.cumsum(lens) - lens, lens)
    hit_pos = np.where(hit, pos_in_seg, np.iinfo(np.int64).max)
    np.minimum.at(first_hit, seg, hit_pos)
    examined = int(np.where(found, first_hit + 1, lens).sum())
    return new, examined
