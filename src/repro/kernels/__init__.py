"""The paper's kernels: colouring, irregular computation, and BFS."""

from repro.kernels.coloring import (
    greedy_coloring,
    greedy_coloring_stamp,
    ColoringRun,
    parallel_coloring,
    verify_coloring,
    count_conflicts,
)
from repro.kernels.irregular import irregular_kernel, simulate_irregular, IrregularRun
from repro.kernels.bfs import (
    bfs_sequential,
    bfs_fifo,
    frontier_profile,
    BFSRun,
    simulate_bfs,
    bfs_parallel,
    BFS_VARIANTS,
    Bag,
)

__all__ = [
    "greedy_coloring",
    "greedy_coloring_stamp",
    "ColoringRun",
    "parallel_coloring",
    "verify_coloring",
    "count_conflicts",
    "irregular_kernel",
    "simulate_irregular",
    "IrregularRun",
    "bfs_sequential",
    "bfs_fifo",
    "frontier_profile",
    "BFSRun",
    "simulate_bfs",
    "bfs_parallel",
    "BFS_VARIANTS",
    "Bag",
]
