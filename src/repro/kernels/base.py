"""Shared helpers for the simulated kernels."""

from __future__ import annotations

import numpy as np

from repro.sim.stats import ChunkExec

__all__ = ["flat_gather", "gather_neighbors", "wave_partition", "KernelRun",
           "AccessSet", "BenignRace"]


def flat_gather(indices: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Concatenate CSR slices ``indices[starts[i]:ends[i]]``.

    Returns ``(values, seg)`` where ``seg[j]`` is the slice index that
    produced ``values[j]``.  Fully vectorised.
    """
    lens = (ends - starts).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lens)
    seg = np.repeat(np.arange(len(lens), dtype=np.int64), lens)
    return indices[flat].astype(np.int64), seg


def gather_neighbors(indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray):
    """All neighbours of *verts*: ``(neighbors, seg)`` with ``seg`` the
    position of the owning vertex within *verts*."""
    return flat_gather(indices, indptr[verts], indptr[verts + 1])


def wave_partition(chunks: list[ChunkExec], n_threads: int) -> list[list[ChunkExec]]:
    """Group a chunk schedule into concurrency *waves*.

    Chunks are sorted by start time and grouped ``n_threads`` at a time:
    chunks in the same wave are treated as executing concurrently (they
    cannot see each other's writes), chunks in earlier waves as committed.
    This is the time-faithful approximation the semantic replay uses for
    speculative-colouring conflicts and relaxed-queue duplicates
    (DESIGN.md §3).
    """
    ordered = sorted(chunks, key=lambda c: (c.start, c.thread, c.lo))
    return [ordered[i:i + n_threads] for i in range(0, len(ordered), n_threads)]


class BenignRace:
    """A declared-intentional race on one array (see :class:`AccessSet`).

    ``expect`` asserts the race must actually appear in the schedule
    (its absence becomes a checker warning — e.g. speculative colouring
    *relies* on concurrent tentative writes existing); ``bound`` caps
    the racing pair count as a fraction of the array's declared writes.
    """

    __slots__ = ("array", "reason", "expect", "bound")

    def __init__(self, array: str, reason: str, expect: bool = False,
                 bound: float | None = None):
        if not reason:
            raise ValueError("benign_race requires a reason — annotation "
                             "documents intent, it is not suppression")
        if bound is not None and not 0.0 <= bound:
            raise ValueError(f"bound must be >= 0, got {bound}")
        self.array = array
        self.reason = reason
        self.expect = expect
        self.bound = bound


class AccessSet:
    """A parallel loop's declared per-chunk memory footprint.

    Kernels hand one of these to ``parallel_for(..., access=...)`` when
    a :mod:`repro.check` checker is active.  Each entry names a shared
    *array* and a vectorised ``cells(lo, hi) -> ndarray`` closure that
    returns the cell ids items ``[lo, hi)`` touch; the checker
    intersects the footprints of concurrent chunks to find
    unsynchronized overlaps.

    ``guard`` names a per-cell lock family (e.g. the SNAP BFS's
    per-vertex locks): two accesses to the same cell under the same
    guard are treated as synchronized by the lockset pass.

    :meth:`benign_race` annotates an array whose races are *intended*
    (speculative colouring's tentative writes, relaxed-queue inserts):
    they are tallied and bound-checked instead of reported.
    """

    __slots__ = ("label", "entries", "benign")

    READ = "read"
    WRITE = "write"

    def __init__(self, label: str = ""):
        self.label = label
        self.entries: list[tuple] = []  # (kind, array, cells_fn, guard)
        self.benign: dict[str, BenignRace] = {}

    def reads(self, array: str, cells, guard: str | None = None) -> "AccessSet":
        """Declare that items ``[lo, hi)`` read ``array[cells(lo, hi)]``."""
        self.entries.append((self.READ, array, cells, guard))
        return self

    def writes(self, array: str, cells, guard: str | None = None) -> "AccessSet":
        """Declare that items ``[lo, hi)`` write ``array[cells(lo, hi)]``."""
        self.entries.append((self.WRITE, array, cells, guard))
        return self

    def benign_race(self, array: str, reason: str, expect: bool = False,
                    bound: float | None = None) -> "AccessSet":
        """Annotate races on *array* as intentional (asserted, not reported)."""
        self.benign[array] = BenignRace(array, reason, expect=expect,
                                        bound=bound)
        return self

    def footprint(self, lo: int, hi: int) -> dict:
        """Evaluate the declared closures for chunk ``[lo, hi)``.

        Returns ``{array: [(kind, cells, guard), ...]}`` with each cell
        array deduplicated ``int64``; empty footprints are dropped.
        """
        out: dict[str, list] = {}
        for kind, array, cells_fn, guard in self.entries:
            cells = np.unique(np.asarray(cells_fn(lo, hi), dtype=np.int64))
            if len(cells):
                out.setdefault(array, []).append((kind, cells, guard))
        return out


class KernelRun:
    """Base class for kernel run results: accumulates simulated time."""

    def __init__(self):
        self.total_cycles = 0.0
        self.loop_stats = []

    def add_loop(self, stats) -> None:
        """Fold one parallel loop's span into the run total."""
        self.total_cycles += stats.span
        self.loop_stats.append(stats)
