"""Shared helpers for the simulated kernels."""

from __future__ import annotations

import numpy as np

from repro.sim.stats import ChunkExec

__all__ = ["flat_gather", "gather_neighbors", "wave_partition", "KernelRun"]


def flat_gather(indices: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Concatenate CSR slices ``indices[starts[i]:ends[i]]``.

    Returns ``(values, seg)`` where ``seg[j]`` is the slice index that
    produced ``values[j]``.  Fully vectorised.
    """
    lens = (ends - starts).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, lens)
    seg = np.repeat(np.arange(len(lens), dtype=np.int64), lens)
    return indices[flat].astype(np.int64), seg


def gather_neighbors(indptr: np.ndarray, indices: np.ndarray, verts: np.ndarray):
    """All neighbours of *verts*: ``(neighbors, seg)`` with ``seg`` the
    position of the owning vertex within *verts*."""
    return flat_gather(indices, indptr[verts], indptr[verts + 1])


def wave_partition(chunks: list[ChunkExec], n_threads: int) -> list[list[ChunkExec]]:
    """Group a chunk schedule into concurrency *waves*.

    Chunks are sorted by start time and grouped ``n_threads`` at a time:
    chunks in the same wave are treated as executing concurrently (they
    cannot see each other's writes), chunks in earlier waves as committed.
    This is the time-faithful approximation the semantic replay uses for
    speculative-colouring conflicts and relaxed-queue duplicates
    (DESIGN.md §3).
    """
    ordered = sorted(chunks, key=lambda c: (c.start, c.thread, c.lo))
    return [ordered[i:i + n_threads] for i in range(0, len(ordered), n_threads)]


class KernelRun:
    """Base class for kernel run results: accumulates simulated time."""

    def __init__(self):
        self.total_cycles = 0.0
        self.loop_stats = []

    def add_loop(self, stats) -> None:
        """Fold one parallel loop's span into the run total."""
        self.total_cycles += stats.span
        self.loop_stats.append(stats)
