"""Irregular-computation microbenchmark (the paper's Algorithm 5, §III-B).

Each vertex's double-precision state is replaced by the average of its
neighbours' states, ``iterations`` times — "a reasonable abstraction of a
single iteration of algorithms such as PageRank or Heat Equation solvers"
with the data dependencies of a sparse matrix-vector product.  The
``iterations`` knob moves the kernel along the
computation-to-communication axis: the first neighbourhood sweep pays the
memory system, the repeats mostly pay the FPU/issue pipeline — which is
exactly the interplay Figure 3 studies.

:func:`irregular_kernel` is the *real* computation (vectorised, usable as
a library function); :func:`simulate_irregular` runs the kernel through a
simulated runtime and returns timing.  The computation itself is
schedule-independent up to benign races (§III-B reads neighbours' current
states), so the simulation does not replay semantics chunk-by-chunk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.base import AccessSet, KernelRun, gather_neighbors
from repro.machine.cache import access_profile_cached
from repro.machine.config import KNF, MachineConfig
from repro.machine.costs import WorkCosts, irregular_costs
from repro.runtime.base import RuntimeSpec

__all__ = ["irregular_kernel", "simulate_irregular", "IrregularRun"]


def irregular_kernel(graph: CSRGraph, state: np.ndarray | None = None,
                     iterations: int = 1) -> np.ndarray:
    """Run the microbenchmark computation for real (Jacobi-style sweeps).

    Returns the final state; the input array is not modified.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n = graph.n_vertices
    if state is None:
        state = np.ones(n, dtype=np.float64)
    else:
        state = np.asarray(state, dtype=np.float64).copy()
        if len(state) != n:
            raise ValueError(f"state has length {len(state)}, expected {n}")
    indptr, indices = graph.indptr, graph.indices
    deg = graph.degrees.astype(np.float64)
    for _ in range(iterations):
        cs = np.concatenate([[0.0], np.cumsum(state[indices])])
        nbr_sum = cs[indptr[1:]] - cs[indptr[:-1]]
        state = (state + nbr_sum) / (deg + 1.0)
    return state


def _sweep_access(graph: CSRGraph, n_threads: int) -> AccessSet:
    """Footprint of one neighbourhood sweep: vertex ``i`` writes
    ``state[i]`` and reads its neighbours' states.

    The paper's Algorithm 5 runs Jacobi-style sweeps *without* double
    buffering: a neighbour's state may be read before or after its
    concurrent update.  That read-write race is the benign
    "data dependencies of SpMV" sharing §III-B describes — the sweep
    converges either way — so it is annotated, and expected whenever the
    graph has any edge between chunks.
    """

    def written(lo, hi):
        return np.arange(lo, hi, dtype=np.int64)

    def read(lo, hi):
        verts = np.arange(lo, hi, dtype=np.int64)
        return gather_neighbors(graph.indptr, graph.indices, verts)[0]

    return (AccessSet("irregular-sweep")
            # repro: ignore[fp-overbroad-footprint] the sweep is
            # vectorized: `state` is rebound whole-array each step, so
            # no subscript write exists for the analyzer to find; the
            # footprint describes the *modelled* kernel's writes.
            .writes("state", written)
            .reads("state", read)
            .benign_race("state",
                         "Jacobi sweep without double buffering: stale or "
                         "fresh neighbour reads both converge (paper §III-B)",
                         expect=False))


@dataclass
class IrregularRun(KernelRun):
    """Result of one simulated microbenchmark execution."""

    iterations: int = 1
    state: np.ndarray = None

    def __init__(self, iterations: int):
        KernelRun.__init__(self)
        self.iterations = iterations
        self.state = None


def simulate_irregular(
    graph: CSRGraph,
    n_threads: int,
    iterations: int = 1,
    spec: RuntimeSpec | None = None,
    config: MachineConfig = KNF,
    cache_scale: float = 1.0,
    seed: int = 0,
    compute_state: bool = False,
) -> IrregularRun:
    """Simulate the microbenchmark on *config* under *spec*.

    With ``compute_state`` the real computation runs too (for examples and
    correctness tests); timing never depends on the state values.
    """
    if spec is None:
        from repro.runtime.base import ProgrammingModel
        spec = RuntimeSpec(model=ProgrammingModel.OPENMP)
    run = IrregularRun(iterations)
    if graph.n_vertices == 0:
        return run
    profile = access_profile_cached(graph, config, n_threads, state_bytes=8,
                                    cache_scale=cache_scale)
    work = irregular_costs(graph, profile, iterations, config.local_hit_cycles)
    body_item, body_edge = spec.body_overhead
    if body_item or body_edge:
        deg = graph.degrees.astype(np.float64)
        work = WorkCosts(work.compute + body_item + body_edge * deg,
                         work.stall, work.volume)
    stats = spec.parallel_for(config, n_threads, work, tls_entries=0, seed=seed,
                              access=_sweep_access(graph, n_threads))
    run.add_loop(stats)
    if compute_state:
        run.state = irregular_kernel(graph, iterations=iterations)
    return run
