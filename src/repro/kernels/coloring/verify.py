"""Colouring validation helpers."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["verify_coloring", "count_conflicts"]


def count_conflicts(graph: CSRGraph, colors: np.ndarray) -> int:
    """Number of undirected edges whose endpoints share a colour.

    Uncoloured vertices (colour 0) never conflict — the parallel algorithm
    queries this mid-iteration when part of the graph is still tentative.
    """
    colors = np.asarray(colors)
    if len(colors) != graph.n_vertices:
        raise ValueError("colors length does not match vertex count")
    src = np.repeat(np.arange(graph.n_vertices, dtype=np.int64), graph.degrees)
    dst = graph.indices
    same = (colors[src] == colors[dst]) & (colors[src] > 0) & (src < dst)
    return int(same.sum())


def verify_coloring(graph: CSRGraph, colors: np.ndarray,
                    require_complete: bool = True) -> bool:
    """True iff *colors* is a proper distance-1 colouring of *graph*.

    With ``require_complete`` every vertex must carry a positive colour;
    otherwise only coloured-coloured edges are checked.
    """
    colors = np.asarray(colors)
    if len(colors) != graph.n_vertices:
        return False
    if require_complete and graph.n_vertices and colors.min() < 1:
        return False
    return count_conflicts(graph, colors) == 0
