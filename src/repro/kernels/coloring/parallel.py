"""Iterative parallel greedy colouring (the paper's Algorithms 2–4).

Speculative strategy of Gebremedhin–Manne as extended by Bozdağ et al. and
Çatalyürek et al.: colour all ``Visit`` vertices in parallel tolerating
conflicts, detect conflicts in a second parallel pass, and iterate on the
conflict set until it is empty.

The run is simulated on a :class:`~repro.machine.config.MachineConfig`
through a :class:`~repro.runtime.base.RuntimeSpec`; the *semantics* are
replayed over the simulated chunk schedule so that conflicts arise from
actual (simulated-time) concurrency: concurrent chunks advance in
lockstep instants, a vertex sees every colour committed at an earlier
instant, and same-instant adjacent colourings race only when their
check-then-write windows truly overlap (``COLOR_RACE_FRACTION``).  More
threads ⇒ more simultaneous vertices ⇒ more conflicts ⇒ more rounds —
the behaviour the paper verifies stays mild (§V-B: colour counts "never
differ by more than 5%").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import env_float
from repro.graph.csr import CSRGraph
from repro.kernels.base import (AccessSet, KernelRun, gather_neighbors,
                                wave_partition)
from repro.kernels.coloring.sequential import greedy_coloring
from repro.machine.cache import access_profile_cached
from repro.machine.config import KNF, MachineConfig
from repro.machine.costs import (WorkCosts, coloring_conflict_costs,
                                 coloring_tentative_costs)
from repro.runtime.base import RuntimeSpec

__all__ = ["ColoringRun", "parallel_coloring", "color_race_fraction"]

_BITS = np.uint64(1) << np.arange(64, dtype=np.uint64)

#: Probability that two *same-instant* adjacent colourings actually race.
#: The lockstep replay marks whole vertex-processing slots as simultaneous,
#: but a real conflict needs the reader's colour gather to precede the
#: writer's commit — a window a fraction of the slot wide (~0.25).  Pairs
#: that don't race behave as if the commit was seen: the later vertex
#: simply first-fits around it (handled inline, no revisit).  A further
#: ~1/5 factor corrects for suite scaling: the graphs are ~1/8 size at
#: unchanged degree, so simultaneously-processed vertices are ~5x more
#: likely to be adjacent than at paper scale (EXPERIMENTS.md).
COLOR_RACE_FRACTION = 0.05


def color_race_fraction() -> float:
    """The effective race fraction: :data:`COLOR_RACE_FRACTION`, or the
    validated ``REPRO_COLOR_RACE_FRACTION`` environment override.

    Read per run (not at import) so a harness can sweep the calibration
    without reloading the module; values outside ``[0, 1]`` are rejected
    (a probability).
    """
    return env_float("REPRO_COLOR_RACE_FRACTION", COLOR_RACE_FRACTION,
                     lo=0.0, hi=1.0)


@dataclass
class ColoringRun(KernelRun):
    """Result of one simulated parallel colouring execution."""

    colors: np.ndarray = None
    n_colors: int = 0
    rounds: int = 0
    conflicts_per_round: list = field(default_factory=list)

    def __init__(self):
        KernelRun.__init__(self)
        self.colors = None
        self.n_colors = 0
        self.rounds = 0
        self.conflicts_per_round = []


def parallel_coloring(
    graph: CSRGraph,
    n_threads: int,
    spec: RuntimeSpec | None = None,
    config: MachineConfig = KNF,
    cache_scale: float = 1.0,
    seed: int = 0,
    max_rounds: int = 60,
    faults=None,
) -> ColoringRun:
    """Simulate the iterative parallel colouring of *graph*.

    Returns a :class:`ColoringRun` with the final colouring and the total
    simulated cycles, from which the harness computes speedups.  The
    colouring is valid unless ``faults`` (a
    :class:`~repro.sim.faults.FaultInjector`) kills threads holding
    statically-dealt work — check with
    :func:`~repro.kernels.coloring.verify.verify_coloring` after a
    faulted run.
    """
    if spec is None:
        from repro.runtime.base import ProgrammingModel
        spec = RuntimeSpec(model=ProgrammingModel.OPENMP)
    n = graph.n_vertices
    run = ColoringRun()
    run.colors = np.zeros(n, dtype=np.int64)
    if n == 0:
        return run

    profile = access_profile_cached(graph, config, n_threads, state_bytes=4,
                             cache_scale=cache_scale)
    tls_per_access = spec.tls_access_cycles
    body_item, body_edge = spec.body_overhead
    deg = graph.degrees.astype(np.float64)
    overhead = body_item + body_edge * deg

    tent_all = coloring_tentative_costs(graph, profile)
    tent_all = WorkCosts(
        tent_all.compute + (deg + 1.0) * tls_per_access + overhead,
        tent_all.stall, tent_all.volume)
    conf_all = coloring_conflict_costs(graph, profile)
    conf_all = WorkCosts(conf_all.compute + overhead,
                         conf_all.stall, conf_all.volume)

    write_time = np.full(n, -1, dtype=np.int64)
    time_counter = 0
    race_fraction = color_race_fraction()

    visit = np.arange(n, dtype=np.int64)
    tls_entries = graph.max_degree + 1

    while visit.size and run.rounds < max_rounds:
        # --- tentative colouring pass (Algorithm 3) ----------------------
        st1 = spec.parallel_for(config, n_threads, tent_all.take(visit),
                                tls_entries=tls_entries,
                                seed=seed + 17 * run.rounds, faults=faults,
                                access=_tentative_access(graph, visit,
                                                         n_threads))
        run.add_loop(st1)
        if n_threads == 1:
            greedy_coloring(graph, order=visit, colors=run.colors)
        else:
            time_counter = _replay_tentative(
                graph, visit, run.colors, st1.chunks, n_threads,
                write_time, time_counter)

        # --- conflict detection pass (Algorithm 4) -----------------------
        st2 = spec.parallel_for(config, n_threads, conf_all.take(visit),
                                seed=seed + 17 * run.rounds + 1, faults=faults,
                                access=_conflict_access(graph, visit))
        run.add_loop(st2)
        rng = np.random.default_rng((seed + 3) * 99_991 + run.rounds)
        conflicts = _detect_conflicts(graph, visit, run.colors, write_time,
                                      rng, race_fraction)
        run.conflicts_per_round.append(len(conflicts))
        visit = conflicts
        run.rounds += 1

    if visit.size:
        raise RuntimeError(f"colouring did not converge in {max_rounds} rounds")
    run.n_colors = int(run.colors.max()) if n else 0
    return run


def _tentative_access(graph: CSRGraph, visit: np.ndarray,
                      n_threads: int) -> AccessSet:
    """Footprint of one tentative pass: item ``i`` writes
    ``colors[visit[i]]`` and reads the colours of its neighbours.

    Concurrent chunks genuinely race on ``colors`` — a vertex may miss a
    neighbour's simultaneous commit.  That is the speculation the
    algorithm is built on (conflicts are detected and repaired), so the
    race is annotated benign and *expected* whenever more than one
    thread runs; the conflict pass carries no annotation, so losing the
    inter-pass join surfaces as a hard error.
    """

    def written(lo, hi):
        return visit[lo:hi]

    def read(lo, hi):
        return gather_neighbors(graph.indptr, graph.indices, visit[lo:hi])[0]

    return (AccessSet("coloring-tentative")
            .writes("colors", written)
            .reads("colors", read)
            .benign_race("colors",
                         "speculative colouring tolerates same-instant "
                         "adjacent commits; the conflict pass repairs them "
                         "(Gebremedhin-Manne, paper Alg. 2-4)",
                         expect=n_threads > 1 and len(visit) > 1))


def _conflict_access(graph: CSRGraph, visit: np.ndarray) -> AccessSet:
    """Footprint of one conflict-detection pass: pure reads of ``colors``
    (own vertex and neighbours).  Deliberately *not* annotated: these
    reads must happen-after every tentative write of the round, which
    only the region join guarantees."""

    def read(lo, hi):
        verts = visit[lo:hi]
        nbrs = gather_neighbors(graph.indptr, graph.indices, verts)[0]
        return np.concatenate([verts, nbrs])

    return AccessSet("coloring-conflict").reads("colors", read)


def _replay_tentative(graph, visit, colors, chunks, n_threads,
                      write_time, time0):
    """Time-faithful semantic replay of one tentative-colouring pass.

    Chunks are grouped into concurrency waves; within a wave the threads
    advance in lockstep: at step ``p`` the p-th vertex of every chunk is
    coloured simultaneously (vectorised).  A vertex sees every colour
    committed at an earlier lockstep instant — earlier waves/rounds and
    earlier positions of any concurrent chunk (caches are coherent, writes
    propagate immediately) — but not the vertices being coloured at the
    *same* instant.  Conflicts therefore arise exactly between
    simultaneously-processed adjacent vertices, which is the race the
    paper's speculative algorithm tolerates and repairs.
    """
    indptr, indices = graph.indptr, graph.indices
    waves = wave_partition(chunks, n_threads)
    tick = time0
    for wave in waves:
        lows = np.asarray([c.lo for c in wave], dtype=np.int64)
        sizes = np.asarray([c.hi - c.lo for c in wave], dtype=np.int64)
        for p in range(int(sizes.max())):
            tick += 1
            live = sizes > p
            verts = visit[lows[live] + p]
            _color_wave_step(indptr, indices, colors, verts, tick, write_time)
    return tick


def _color_wave_step(indptr, indices, colors, verts, tick, write_time):
    """Colour one lockstep instant across concurrent chunks (vectorised)."""
    nbrs, seg = gather_neighbors(indptr, indices, verts)
    nc = colors[nbrs]
    visible = (nc > 0) & (write_time[nbrs] < tick)
    small = visible & (nc <= 64)
    masks = np.zeros(len(verts), dtype=np.uint64)
    if len(nbrs):
        contrib = np.where(small, _BITS[np.where(small, nc - 1, 0)],
                           np.uint64(0))
        np.bitwise_or.at(masks, seg, contrib)
    low = (~masks) & (masks + np.uint64(1))
    overflow = low == 0
    mex = np.zeros(len(verts), dtype=np.int64)
    ok = ~overflow
    mex[ok] = np.log2(low[ok].astype(np.float64)).astype(np.int64) + 1
    if overflow.any() or (visible & ~small).any():
        # Rare path: colour counts past 64 — per-vertex exact first fit.
        need = np.unique(np.concatenate([np.nonzero(overflow)[0],
                                         np.unique(seg[visible & ~small])]))
        for i in need:
            vn = nc[(seg == i) & visible]
            seen = np.zeros(len(vn) + 2, dtype=bool)
            seen[vn[vn <= len(vn) + 1] - 1] = True
            mex[i] = int(np.argmin(seen)) + 1
    colors[verts] = mex
    # repro: ignore[fp-undeclared-write, fp-undeclared-write-transitive] write_time is replay-side
    # bookkeeping (which lockstep instant committed each colour), not
    # simulated shared state; it never exists on the modelled machine,
    # so the checker has nothing to audit.
    write_time[verts] = tick


def _detect_conflicts(graph, visit, colors, write_time=None, rng=None,
                      race_fraction=1.0) -> np.ndarray:
    """Conflicting vertices of *visit* (the paper revisits ``v`` when
    ``color[v] == color[w]`` and ``v < w``).

    With ``race_fraction < 1``, each clashing pair is a *real* race with
    that probability; otherwise the later-committing endpoint behaved as
    if it saw the write, so it is re-first-fitted in place instead of
    being queued for another round (see ``COLOR_RACE_FRACTION``).
    """
    nbrs, seg = gather_neighbors(graph.indptr, graph.indices, visit)
    if not len(nbrs):
        return np.zeros(0, dtype=np.int64)
    v = visit[seg]
    clash = (colors[v] == colors[nbrs]) & (v < nbrs)
    cv, cw = v[clash], nbrs[clash]
    if len(cv) and race_fraction < 1.0 and rng is not None:
        real = rng.random(len(cv)) < race_fraction
        avoided_v, avoided_w = cv[~real], cw[~real]
        cv = cv[real]
        if len(avoided_v):
            _resolve_avoided(graph, colors, write_time, avoided_v, avoided_w)
            # Re-fitting can itself introduce a (rare) new clash against a
            # pending real conflict; those surface in the next round's
            # detection pass, exactly like a late conflict on hardware.
    return np.unique(cv)


def _resolve_avoided(graph, colors, write_time, av, aw):
    """Re-first-fit the later endpoint of each non-racing clash (it 'saw'
    the earlier commit), sequentially and with full visibility."""
    later = np.where(write_time[aw] > write_time[av], aw,
                     np.where(write_time[aw] < write_time[av], av,
                              np.maximum(av, aw)))
    order = np.unique(later)
    greedy_coloring(graph, order=order, colors=colors)
