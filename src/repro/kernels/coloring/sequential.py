"""Sequential greedy (First-Fit) distance-1 colouring — the paper's Alg. 1.

Vertices are visited in ID order; each receives the smallest colour not
used by an already-coloured neighbour.  This is the baseline whose colour
count Table I reports, and the quality yardstick for the parallel
algorithm (§V-B: parallel colour counts stay within 5 %).

Two interchangeable inner loops:

* a *bitset* path (colours ≤ 63): per vertex, one vectorised gather of
  neighbour colours and one ``bitwise_or`` reduction; the smallest missing
  colour is the lowest zero bit,
* a *stamp* path (the textbook ``forbiddenColors`` array stamped with the
  current vertex, exactly Algorithm 1), used for high colour counts and as
  a cross-check in tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["greedy_coloring", "greedy_coloring_stamp"]

_BITSET_LIMIT = 63  # colours representable in one uint64 (bit c-1 = colour c)


def greedy_coloring(graph: CSRGraph, order: np.ndarray | None = None,
                    colors: np.ndarray | None = None):
    """First-Fit greedy colouring.

    Parameters
    ----------
    graph:
        The graph to colour.
    order:
        Optional visit order (array of vertex IDs); defaults to ``0..n-1``,
        matching the paper's "naturally ordered" runs.
    colors:
        Optional pre-existing colour array to continue from (used by the
        parallel algorithm's sequential fast path when recolouring a
        conflict set); modified in place.

    Returns
    -------
    (n_colors, colors):
        ``colors`` is an ``int64`` array with 1-based colours; ``n_colors``
        is ``max(colors)`` (0 for an empty graph).
    """
    n = graph.n_vertices
    indptr, indices = graph.indptr, graph.indices
    if colors is None:
        colors = np.zeros(n, dtype=np.int64)
    elif len(colors) != n:
        raise ValueError(f"colors has length {len(colors)}, expected {n}")
    if order is None:
        order = range(n)
    bits = np.uint64(1) << np.arange(64, dtype=np.uint64)
    maxcolor = int(colors.max()) if n else 0
    for v in order:
        nbr = indices[indptr[v]:indptr[v + 1]]
        nc = colors[nbr]
        nc = nc[nc > 0]
        if nc.size == 0:
            c = 1
        elif maxcolor <= _BITSET_LIMIT:
            mask = int(np.bitwise_or.reduce(bits[nc - 1]))
            # lowest zero bit of mask -> smallest permissible colour
            c = (~mask & (mask + 1)).bit_length()
        else:
            c = _first_fit_stamp(nc)
        colors[v] = c
        if c > maxcolor:
            maxcolor = c
    return maxcolor, colors


def _first_fit_stamp(neighbor_colors: np.ndarray) -> int:
    """Smallest positive integer absent from *neighbor_colors*."""
    seen = np.zeros(len(neighbor_colors) + 2, dtype=bool)
    inrange = neighbor_colors[neighbor_colors <= len(neighbor_colors) + 1]
    seen[inrange - 1] = True
    return int(np.argmin(seen)) + 1


def greedy_coloring_stamp(graph: CSRGraph, order=None):
    """Literal Algorithm 1 (stamped ``forbiddenColors`` array).

    Slower than :func:`greedy_coloring` but a line-for-line transcription of
    the paper's pseudocode; tests assert both produce identical colourings.
    """
    n = graph.n_vertices
    indptr, indices = graph.indptr, graph.indices
    colors = np.zeros(n, dtype=np.int64)
    forbidden = np.full(graph.max_degree + 2, -1, dtype=np.int64)
    if order is None:
        order = range(n)
    maxcolor = 0
    for v in order:
        for w in indices[indptr[v]:indptr[v + 1]]:
            c = colors[w]
            if c:
                forbidden[c - 1] = v
        c = 1
        while forbidden[c - 1] == v:
            c += 1
        colors[v] = c
        if c > maxcolor:
            maxcolor = c
    return maxcolor, colors
