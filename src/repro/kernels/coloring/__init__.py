"""Graph colouring kernels: sequential greedy (Alg. 1), the iterative
parallel speculative algorithm (Alg. 2-4), and validation."""

from repro.kernels.coloring.sequential import greedy_coloring, greedy_coloring_stamp
from repro.kernels.coloring.parallel import ColoringRun, parallel_coloring
from repro.kernels.coloring.verify import verify_coloring, count_conflicts
from repro.kernels.coloring.distance2 import (greedy_distance2_coloring,
                                              verify_distance2_coloring)
from repro.kernels.coloring.jones_plassmann import (jones_plassmann_coloring,
                                                    simulate_jones_plassmann,
                                                    JonesPlassmannRun)

__all__ = [
    "greedy_coloring",
    "greedy_coloring_stamp",
    "ColoringRun",
    "parallel_coloring",
    "verify_coloring",
    "count_conflicts",
    "greedy_distance2_coloring",
    "verify_distance2_coloring",
    "jones_plassmann_coloring",
    "simulate_jones_plassmann",
    "JonesPlassmannRun",
]
