"""Jones–Plassmann parallel colouring (comparison baseline, extension).

The speculation-based algorithm the paper uses (Gebremedhin–Manne line)
is one of two classic parallel colouring families; the other is
Jones–Plassmann: give every vertex a random priority, and in each round
colour exactly the vertices whose priority beats all *uncoloured*
neighbours.  No conflicts ever occur — the price is more rounds
(O(log n / log log n) in expectation on bounded-degree graphs).

This module provides the real algorithm (round-synchronous, vectorised)
and a simulated-machine wrapper, so the repository can compare the two
families' round counts and simulated runtimes (an ablation the paper's
related-work section §III-A implies but does not run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import rng_from_seed
from repro.graph.csr import CSRGraph
from repro.kernels.base import AccessSet, KernelRun, gather_neighbors

__all__ = ["jones_plassmann_coloring", "simulate_jones_plassmann",
           "JonesPlassmannRun"]


def jones_plassmann_coloring(graph: CSRGraph, seed=0, max_rounds: int = 10_000):
    """Round-synchronous Jones-Plassmann.

    Returns ``(n_colors, colors, rounds)``; the colouring is always
    proper (asserted by tests), colours are 1-based.
    """
    n = graph.n_vertices
    indptr, indices = graph.indptr, graph.indices
    colors = np.zeros(n, dtype=np.int64)
    if n == 0:
        return 0, colors, 0
    rng = rng_from_seed(seed)
    # random priorities with index tie-break (a permutation is simplest)
    priority = rng.permutation(n).astype(np.int64)

    uncolored = np.arange(n, dtype=np.int64)
    rounds = 0
    bits = np.uint64(1) << np.arange(64, dtype=np.uint64)
    while uncolored.size and rounds < max_rounds:
        rounds += 1
        nbrs, seg = gather_neighbors(indptr, indices, uncolored)
        # a vertex is a local max if no *uncoloured* neighbour outranks it
        contested = colors[nbrs] == 0
        beat = contested & (priority[nbrs] > priority[uncolored[seg]])
        losers = np.zeros(len(uncolored), dtype=bool)
        if len(nbrs):
            np.logical_or.at(losers, seg, beat)
        winners = uncolored[~losers]
        # colour winners: smallest colour unused by (coloured) neighbours
        _first_fit(indptr, indices, colors, winners, bits)
        uncolored = uncolored[losers]
    if uncolored.size:
        raise RuntimeError(f"did not converge in {max_rounds} rounds")
    return int(colors.max()), colors, rounds


def _first_fit(indptr, indices, colors, verts, bits):
    """First-fit each vertex of *verts* (no two are adjacent)."""
    nbrs, seg = gather_neighbors(indptr, indices, verts)
    nc = colors[nbrs]
    small = (nc > 0) & (nc <= 64)
    masks = np.zeros(len(verts), dtype=np.uint64)
    if len(nbrs):
        contrib = np.where(small, bits[np.where(small, nc - 1, 0)],
                           np.uint64(0))
        np.bitwise_or.at(masks, seg, contrib)
    low = (~masks) & (masks + np.uint64(1))
    mex = np.zeros(len(verts), dtype=np.int64)
    need_exact = low == 0  # all 64 low bits taken
    if len(nbrs):
        has_big = np.zeros(len(verts), dtype=bool)
        np.logical_or.at(has_big, seg, nc > 64)
        need_exact |= has_big
    ok = ~need_exact
    mex[ok] = np.log2(low[ok].astype(np.float64)).astype(np.int64) + 1
    for i in np.nonzero(need_exact)[0]:
        vn = nc[seg == i]
        vn = vn[vn > 0]
        seen = np.zeros(len(vn) + 2, dtype=bool)
        seen[vn[vn <= len(vn) + 1] - 1] = True
        mex[i] = int(np.argmin(seen)) + 1
    colors[verts] = mex


def _round_access(graph: CSRGraph, visit: np.ndarray) -> AccessSet:
    """Footprint of one JP round: item ``i`` may write
    ``colors[visit[i]]`` (if it wins) and reads its neighbours' colours
    and priorities.

    A loser's neighbour-colour read can overlap a winning neighbour's
    commit within the same region, but round-synchronous semantics make
    the commit visible only next round — the overlap is benign by
    construction (winners form an independent set, so first-fit reads
    never decide on a cell written this round).
    """

    def written(lo, hi):
        return visit[lo:hi]

    def read(lo, hi):
        return gather_neighbors(graph.indptr, graph.indices, visit[lo:hi])[0]

    return (AccessSet("jp-round")
            .writes("colors", written)
            .reads("colors", read)
            .benign_race("colors",
                         "round-synchronous JP: winner commits become "
                         "visible next round; winners are an independent "
                         "set so no first-fit decision depends on a "
                         "same-round write"))


@dataclass
class JonesPlassmannRun(KernelRun):
    """Result of one simulated Jones-Plassmann execution."""

    colors: np.ndarray = None
    n_colors: int = 0
    rounds: int = 0

    def __init__(self):
        KernelRun.__init__(self)
        self.colors = None
        self.n_colors = 0
        self.rounds = 0


def simulate_jones_plassmann(graph: CSRGraph, n_threads: int, spec=None,
                             config=None, cache_scale: float = 1.0,
                             seed: int = 0) -> JonesPlassmannRun:
    """Price the JP rounds on the simulated machine.

    Each round scans the remaining uncoloured vertices (priority compare
    per neighbour, then a first-fit for the winners) — charged through
    the same colouring cost model, one ``parallel_for`` per round.
    """
    from repro.machine.cache import access_profile_cached
    from repro.machine.config import KNF
    from repro.machine.costs import coloring_tentative_costs
    from repro.runtime.base import ProgrammingModel, RuntimeSpec

    config = config or KNF
    if spec is None:
        spec = RuntimeSpec(model=ProgrammingModel.OPENMP, chunk=16)
    run = JonesPlassmannRun()
    n = graph.n_vertices
    if n == 0:
        run.colors = np.zeros(0, dtype=np.int64)
        return run

    profile = access_profile_cached(graph, config, n_threads, 4, cache_scale)
    costs = coloring_tentative_costs(graph, profile)

    # replicate the algorithm round structure to know each round's visit set
    rng = rng_from_seed(seed)
    priority = rng.permutation(n).astype(np.int64)
    colors = np.zeros(n, dtype=np.int64)
    bits = np.uint64(1) << np.arange(64, dtype=np.uint64)
    uncolored = np.arange(n, dtype=np.int64)
    while uncolored.size:
        st = spec.parallel_for(config, n_threads, costs.take(uncolored),
                               tls_entries=graph.max_degree + 1,
                               seed=seed + run.rounds,
                               access=_round_access(graph, uncolored))
        run.add_loop(st)
        nbrs, seg = gather_neighbors(graph.indptr, graph.indices, uncolored)
        beat = (colors[nbrs] == 0) & (priority[nbrs]
                                      > priority[uncolored[seg]])
        losers = np.zeros(len(uncolored), dtype=bool)
        if len(nbrs):
            np.logical_or.at(losers, seg, beat)
        _first_fit(graph.indptr, graph.indices, colors, uncolored[~losers],
                   bits)
        uncolored = uncolored[losers]
        run.rounds += 1
    run.colors = colors
    run.n_colors = int(colors.max()) if n else 0
    return run
