"""Distance-2 graph colouring (extension).

The paper's introduction motivates distance-2 colouring — no two vertices
within two hops share a colour — by its use in compressing Jacobian and
Hessian matrices (Gebremedhin, Manne & Pothen, "What color is your
Jacobian?").  The evaluation itself sticks to distance-1, so this module
is an extension: the greedy First-Fit algorithm on the square graph,
implemented directly on the CSR structure (no explicit G² is built), plus
a validator.  The colour count is at most Δ² + 1.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["greedy_distance2_coloring", "verify_distance2_coloring"]


def greedy_distance2_coloring(graph: CSRGraph, order=None):
    """First-Fit distance-2 colouring.

    Returns ``(n_colors, colors)`` with 1-based colours; any two vertices
    joined by a path of length ≤ 2 receive different colours.
    """
    n = graph.n_vertices
    indptr, indices = graph.indptr, graph.indices
    colors = np.zeros(n, dtype=np.int64)
    if order is None:
        order = range(n)
    maxcolor = 0
    for v in order:
        nbrs = indices[indptr[v]:indptr[v + 1]]
        if len(nbrs):
            # distance-1 and distance-2 neighbourhood in one gather
            starts, ends = indptr[nbrs], indptr[nbrs + 1]
            lens = ends - starts
            total = int(lens.sum())
            offsets = np.repeat(np.cumsum(lens) - lens, lens)
            flat = (np.arange(total, dtype=np.int64) - offsets
                    + np.repeat(starts, lens))
            around = np.concatenate([nbrs.astype(np.int64), indices[flat]])
            nc = colors[around]
            nc = nc[nc > 0]
        else:
            nc = np.zeros(0, dtype=np.int64)
        if nc.size == 0:
            c = 1
        else:
            seen = np.zeros(len(nc) + 2, dtype=bool)
            inrange = nc[nc <= len(nc) + 1]
            seen[inrange - 1] = True
            c = int(np.argmin(seen)) + 1
        colors[v] = c
        if c > maxcolor:
            maxcolor = c
    return maxcolor, colors


def verify_distance2_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no two vertices within distance 2 share a colour."""
    colors = np.asarray(colors)
    if len(colors) != graph.n_vertices:
        return False
    if graph.n_vertices and colors.min() < 1:
        return False
    indptr, indices = graph.indptr, graph.indices
    for v in range(graph.n_vertices):
        nbrs = indices[indptr[v]:indptr[v + 1]]
        if np.any(colors[nbrs] == colors[v]):
            return False
        # all distance-1 neighbours of v are pairwise distance <= 2
        nbr_colors = colors[nbrs]
        if len(np.unique(nbr_colors)) != len(nbr_colors):
            return False
    return True
